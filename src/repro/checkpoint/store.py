"""Checkpoint repositories.

A store survives its writer: the LRM saves checkpoints into a
cluster-level repository so that a task can be resumed on a *different*
node after eviction or crash (migration, in the paper's terms).  The
memory store backs simulations; the file store demonstrates the same
interface against a real filesystem.
"""

import os
import re
from dataclasses import dataclass
from typing import Optional

from repro.checkpoint.serializer import deserialize, serialize


@dataclass(frozen=True)
class CheckpointRecord:
    """One saved checkpoint."""

    task_id: str
    sequence: int
    time: float
    data: bytes

    def state(self) -> dict:
        """Decode (and validate) the stored state."""
        return deserialize(self.data)


class MemoryCheckpointStore:
    """In-memory repository keeping the latest checkpoint per task."""

    def __init__(self, keep_history: int = 1):
        if keep_history < 1:
            raise ValueError("must keep at least one checkpoint")
        self.keep_history = keep_history
        self._records: dict[str, list[CheckpointRecord]] = {}
        self._sequences: dict[str, int] = {}
        self.bytes_written = 0
        self.saves = 0

    def save(self, task_id: str, state: dict, now: float) -> CheckpointRecord:
        """Serialize and store a checkpoint; returns the record."""
        sequence = self._sequences.get(task_id, 0) + 1
        self._sequences[task_id] = sequence
        record = CheckpointRecord(task_id, sequence, now, serialize(state))
        history = self._records.setdefault(task_id, [])
        history.append(record)
        del history[:-self.keep_history]
        self.bytes_written += len(record.data)
        self.saves += 1
        return record

    def load_latest(self, task_id: str) -> Optional[CheckpointRecord]:
        """Most recent checkpoint for the task, or None."""
        history = self._records.get(task_id)
        return history[-1] if history else None

    def discard(self, task_id: str) -> None:
        """Forget all checkpoints for a finished task."""
        self._records.pop(task_id, None)
        self._sequences.pop(task_id, None)

    @property
    def task_ids(self) -> list:
        return sorted(self._records)


_SAFE_TASK_RE = re.compile(r"[^A-Za-z0-9_.-]")


class FileCheckpointStore:
    """Filesystem-backed repository: one file per task's latest checkpoint."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._sequences: dict[str, int] = {}
        self.bytes_written = 0
        self.saves = 0

    def _path(self, task_id: str) -> str:
        safe = _SAFE_TASK_RE.sub("_", task_id)
        return os.path.join(self.directory, f"{safe}.ckpt")

    def save(self, task_id: str, state: dict, now: float) -> CheckpointRecord:
        sequence = self._sequences.get(task_id, 0) + 1
        self._sequences[task_id] = sequence
        data = serialize(state)
        envelope = serialize(
            {"task_id": task_id, "sequence": sequence, "time": now, "data": data}
        )
        path = self._path(task_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(envelope)
        os.replace(tmp, path)    # atomic: a crash never leaves a torn file
        self.bytes_written += len(envelope)
        self.saves += 1
        return CheckpointRecord(task_id, sequence, now, data)

    def load_latest(self, task_id: str) -> Optional[CheckpointRecord]:
        path = self._path(task_id)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as f:
            envelope = deserialize(f.read())
        return CheckpointRecord(
            envelope["task_id"],
            envelope["sequence"],
            envelope["time"],
            envelope["data"],
        )

    def discard(self, task_id: str) -> None:
        self._sequences.pop(task_id, None)
        path = self._path(task_id)
        if os.path.exists(path):
            os.remove(path)

    @property
    def task_ids(self) -> list:
        names = []
        for fname in os.listdir(self.directory):
            if fname.endswith(".ckpt"):
                names.append(fname[:-len(".ckpt")])
        return sorted(names)
