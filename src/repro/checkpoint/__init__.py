"""Portable checkpointing and rollback recovery.

Section 3 of the paper requires checkpoints that are "machine and
operating system independent to permit migration of computation across
grid nodes".  The serializer here produces a versioned, checksummed,
architecture-neutral byte format; stores keep checkpoints either in
memory (simulation) or on disk; and the recovery manager computes
consistent rollback points for parallel applications.
"""

from repro.checkpoint.serializer import (
    DEFAULT_CHUNK_SIZE,
    CheckpointCorrupted,
    chunk_digest,
    deserialize,
    serialize,
    split_chunks,
)
from repro.checkpoint.chunking import (
    DEFAULT_REBASE_EVERY,
    ChunkedChainError,
    ChunkedRepository,
    ChunkPool,
)
from repro.checkpoint.store import (
    CheckpointRecord,
    FileCheckpointStore,
    MemoryCheckpointStore,
)
from repro.checkpoint.recovery import RecoveryManager

__all__ = [
    "CheckpointCorrupted",
    "serialize",
    "deserialize",
    "chunk_digest",
    "split_chunks",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_REBASE_EVERY",
    "ChunkPool",
    "ChunkedRepository",
    "ChunkedChainError",
    "CheckpointRecord",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "RecoveryManager",
]
