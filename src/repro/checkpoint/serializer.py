"""Architecture-neutral checkpoint serialization.

Format::

    magic   "IGCP"           (4 bytes)
    version u16              (format revision)
    length  u32              (payload byte count)
    payload variant-encoded state dict (CDR, fixed little-endian)
    crc32   u32              (over magic..payload)

The payload reuses the ORB's :class:`~repro.orb.cdr.Variant` encoding, so
any state expressible as nested dicts/lists/numbers/strings/bytes moves
between nodes byte-identically regardless of host platform.
"""

import hashlib
import struct
import zlib

from repro.orb.cdr import CdrDecoder, CdrEncoder, VARIANT
from repro.orb.exceptions import MarshalError

MAGIC = b"IGCP"
VERSION = 1

_HEADER = struct.Struct("<4sHxxI")   # magic, version, pad, payload length
_CRC = struct.Struct("<I")

#: Chunking layer defaults (see :mod:`repro.checkpoint.chunking`).  A
#: serialized checkpoint is split into fixed-size chunks, each keyed by
#: its content digest, so unchanged regions of a large state are never
#: re-stored or re-shipped.
DEFAULT_CHUNK_SIZE = 4096
DIGEST_SIZE = 16


class CheckpointCorrupted(Exception):
    """The checkpoint bytes fail validation and must not be restored."""


def serialize(state: dict) -> bytes:
    """Encode a state dict into the portable checkpoint format."""
    if not isinstance(state, dict):
        raise TypeError(f"checkpoint state must be a dict, got {type(state).__name__}")
    enc = CdrEncoder()
    try:
        VARIANT.encode(enc, state)
    except MarshalError as exc:
        raise TypeError(f"state is not checkpointable: {exc}") from exc
    payload = enc.getvalue()
    body = _HEADER.pack(MAGIC, VERSION, len(payload)) + payload
    return body + _CRC.pack(zlib.crc32(body))


def deserialize(data: bytes) -> dict:
    """Decode and validate checkpoint bytes; raises CheckpointCorrupted.

    Validation is header-first: the declared payload length must account
    for *exactly* the bytes between the header and the CRC — a truncated
    file, a length field that disagrees with the payload, and garbage
    appended after the CRC are all rejected before (and regardless of)
    the CRC check, so a forged trailer cannot smuggle extra bytes past a
    recomputed checksum.  The payload decode must also consume every
    declared byte.
    """
    if len(data) < _HEADER.size + _CRC.size:
        raise CheckpointCorrupted("checkpoint shorter than its envelope")
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointCorrupted(f"bad magic {magic!r}")
    if version != VERSION:
        raise CheckpointCorrupted(f"unsupported checkpoint version {version}")
    expected_size = _HEADER.size + length + _CRC.size
    if len(data) != expected_size:
        raise CheckpointCorrupted(
            f"checkpoint is {len(data)} bytes but the declared payload "
            f"length {length} requires exactly {expected_size}"
        )
    body = data[:-_CRC.size]
    (expected_crc,) = _CRC.unpack_from(data, len(body))
    if zlib.crc32(body) != expected_crc:
        raise CheckpointCorrupted("CRC mismatch")
    dec = CdrDecoder(data[_HEADER.size:len(body)])
    try:
        state = VARIANT.decode(dec)
    except MarshalError as exc:
        raise CheckpointCorrupted(f"payload undecodable: {exc}") from exc
    if dec.remaining:
        raise CheckpointCorrupted(
            f"{dec.remaining} undecoded bytes inside the declared payload"
        )
    if not isinstance(state, dict):
        raise CheckpointCorrupted("checkpoint payload is not a state dict")
    return state


# ---------------------------------------------------------------------------
# Chunking layer
# ---------------------------------------------------------------------------

def chunk_digest(chunk: bytes) -> bytes:
    """Content address of one chunk (keyed blake2b, 16 bytes)."""
    return hashlib.blake2b(chunk, digest_size=DIGEST_SIZE).digest()


def split_chunks(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> list:
    """Split serialized checkpoint bytes into fixed-size chunks.

    Every chunk is exactly ``chunk_size`` bytes except the last, which
    holds the remainder.  Joining the chunks reproduces ``data``
    byte-identically, so a restore built from chunks passes the same
    CRC/length validation as the original full snapshot.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]
