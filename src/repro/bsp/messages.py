"""BSMP — bulk synchronous message passing.

Messages sent during superstep *s* become visible to their destination
at superstep *s + 1*, after the global synchronisation.  Delivery order
is deterministic: sorted by sender pid, then send order.
"""

from typing import Any


class MessageBuffers:
    """Per-run double-buffered mailboxes for ``nprocs`` processes."""

    def __init__(self, nprocs: int):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        # outgoing[sender][dest] = [payload, ...]
        self._outgoing = [
            [[] for _ in range(nprocs)] for _ in range(nprocs)
        ]
        self._inbox: list[list] = [[] for _ in range(nprocs)]
        self.messages_sent = 0
        self.bytes_estimate = 0

    def send(self, sender: int, dest: int, payload: Any) -> None:
        """Queue a message for delivery at the next superstep."""
        if not 0 <= dest < self.nprocs:
            raise ValueError(f"destination pid {dest} out of range")
        self._outgoing[sender][dest].append(payload)
        self.messages_sent += 1
        self.bytes_estimate += _payload_size(payload)

    def inbox(self, pid: int) -> list:
        """Messages delivered to ``pid`` at the last synchronisation."""
        return self._inbox[pid]

    def exchange(self) -> None:
        """Deliver all queued messages (called at the barrier)."""
        new_inbox: list[list] = [[] for _ in range(self.nprocs)]
        for sender in range(self.nprocs):
            for dest in range(self.nprocs):
                queued = self._outgoing[sender][dest]
                if queued:
                    new_inbox[dest].extend(queued)
                    self._outgoing[sender][dest] = []
        self._inbox = new_inbox


def _payload_size(payload: Any) -> int:
    """Rough wire size of a payload, for communication-cost accounting."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (list, tuple)):
        return 4 + sum(_payload_size(p) for p in payload)
    if isinstance(payload, dict):
        return 4 + sum(
            _payload_size(k) + _payload_size(v) for k, v in payload.items()
        )
    return 16
