"""BSMP — bulk synchronous message passing.

Messages sent during superstep *s* become visible to their destination
at superstep *s + 1*, after the global synchronisation.  Delivery order
is deterministic: sorted by sender pid, then send order.

With ``combining=True`` (opt-in) the buffers model InteGrade's batched
comm plane: instead of one ORB call per message, every message queued
for the same (sender, destination) pair during a superstep coalesces
into a single CDR-encoded payload flushed at the barrier — ORB calls
per superstep drop from O(messages) to O(communicating peer pairs).
Delivery contents and order are identical in both modes; only the
call/wire accounting changes.

``batch_oneway=True`` (opt-in, independent of combining) models the
ORB's transport-level oneway batching instead: every message is still
a distinct logical call (``orb_calls`` stays O(messages)), but calls
queued for the same peer share one wire frame flushed at the barrier,
so ``frames`` drops to O(communicating peer pairs) and ``bytes_saved``
accounts the amortised per-call framing overhead.
"""

from typing import Any

#: Modelled fixed cost of one ORB invocation (request header, GIOP-style
#: framing, dispatch) — what message combining amortises away.
CALL_OVERHEAD_BYTES = 64


class MessageBuffers:
    """Per-run double-buffered mailboxes for ``nprocs`` processes."""

    def __init__(self, nprocs: int, combining: bool = False,
                 batch_oneway: bool = False):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.combining = combining
        self.batch_oneway = batch_oneway
        # outgoing[sender][dest] = [payload, ...]
        self._outgoing = [
            [[] for _ in range(nprocs)] for _ in range(nprocs)
        ]
        self._inbox: list[list] = [[] for _ in range(nprocs)]
        self.messages_sent = 0
        self.bytes_estimate = 0
        #: ORB invocations the comm plane would issue: one per message
        #: without combining, one per communicating pair per superstep
        #: with it.
        self.orb_calls = 0
        #: Modelled bytes on the wire including per-call overhead.  In
        #: combining mode this is the exact CDR size of each coalesced
        #: batch; without it, one framed call per message.
        self.wire_bytes = 0
        #: Per-pair batches flushed at barriers (combining or transport
        #: oneway batching).
        self.flushes = 0
        #: Wire frames the transport would emit.  Tracks ``orb_calls``
        #: unless ``batch_oneway`` coalesces a pair's calls per superstep.
        self.frames = 0
        #: Per-call framing overhead amortised away by oneway batching.
        self.bytes_saved = 0

    def send(self, sender: int, dest: int, payload: Any) -> None:
        """Queue a message for delivery at the next superstep."""
        if not 0 <= dest < self.nprocs:
            raise ValueError(f"destination pid {dest} out of range")
        self._outgoing[sender][dest].append(payload)
        self.messages_sent += 1
        self.bytes_estimate += _payload_size(payload)
        if not self.combining:
            self.orb_calls += 1
            self.wire_bytes += CALL_OVERHEAD_BYTES + _payload_size(payload)
            if not self.batch_oneway:
                self.frames += 1   # batched frames count at the barrier

    def inbox(self, pid: int) -> list:
        """Messages delivered to ``pid`` at the last synchronisation."""
        return self._inbox[pid]

    def exchange(self) -> None:
        """Deliver all queued messages (called at the barrier)."""
        new_inbox: list[list] = [[] for _ in range(self.nprocs)]
        for sender in range(self.nprocs):
            for dest in range(self.nprocs):
                queued = self._outgoing[sender][dest]
                if queued:
                    new_inbox[dest].extend(queued)
                    if self.combining:
                        self.orb_calls += 1
                        self.flushes += 1
                        self.frames += 1
                        self.wire_bytes += \
                            CALL_OVERHEAD_BYTES + _batch_size(queued)
                    elif self.batch_oneway:
                        # One multi-request frame carries the pair's
                        # queued oneways; the saved overhead is the
                        # per-call framing the batch envelope amortises.
                        self.flushes += 1
                        self.frames += 1
                        self.bytes_saved += \
                            (len(queued) - 1) * CALL_OVERHEAD_BYTES
                    self._outgoing[sender][dest] = []
        self._inbox = new_inbox


def _batch_size(payloads: list) -> int:
    """Exact CDR size of one combined batch, when encodable.

    The coalesced flush ships the whole per-pair message list as a
    single VARIANT payload; payload types outside the VARIANT repertoire
    fall back to the heuristic estimate.
    """
    from repro.orb.cdr import CdrEncoder, VARIANT
    from repro.orb.exceptions import MarshalError
    enc = CdrEncoder()
    try:
        VARIANT.encode(enc, list(payloads))
    except MarshalError:
        return 4 + sum(_payload_size(p) for p in payloads)
    return len(enc.getvalue())


def _payload_size(payload: Any) -> int:
    """Rough wire size of a payload, for communication-cost accounting."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (list, tuple)):
        return 4 + sum(_payload_size(p) for p in payload)
    if isinstance(payload, dict):
        return 4 + sum(
            _payload_size(k) + _payload_size(v) for k, v in payload.items()
        )
    return 16
