"""The executable BSP engine.

Runs ``nprocs`` process functions, one thread each, through supersteps
separated by a global barrier.  All communication (BSMP messages and
DRMA puts) takes effect exactly at the barrier, in deterministic order,
so results do not depend on thread interleaving.

A process that returns keeps participating in barriers ("drains") until
every process has returned, as BSP requires all processes to execute the
same number of synchronisations; the engine handles the bookkeeping so
user code does not have to pad with empty supersteps.  Any process
exception aborts the whole run.
"""

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional

from repro.bsp.drma import Registers
from repro.bsp.messages import MessageBuffers
from repro.bsp.process import BspContext

DEFAULT_SYNC_TIMEOUT = 60.0


class BspError(Exception):
    """The BSP run failed (a process raised, or the barrier broke)."""


@dataclass
class BspRun:
    """Result of a completed BSP run."""

    results: list
    supersteps: int
    messages_sent: int
    comm_bytes: int
    puts_applied: int
    #: ORB invocations the BSMP plane issued (one per message without
    #: combining; one per communicating pair per superstep with it).
    orb_calls: int = 0
    #: DRMA ORB invocations (one per put/get, or per pair when batched).
    drma_calls: int = 0
    #: Modelled wire bytes including per-call framing overhead.
    wire_bytes: int = 0
    #: Wire frames the BSMP plane would emit (== its ``orb_calls``
    #: unless transport oneway batching coalesces per-pair sends).
    bsmp_frames: int = 0
    #: Wire frames the DRMA plane would emit (puts batch; gets do not).
    drma_frames: int = 0
    #: Per-call framing overhead amortised away by oneway batching.
    bytes_saved: int = 0


@dataclass
class _SharedState:
    nprocs: int
    buffers: MessageBuffers
    registers: Registers
    lock: threading.Lock = field(default_factory=threading.Lock)
    done: int = 0
    supersteps: int = 0
    errors: list = field(default_factory=list)


def run_bsp(
    nprocs: int,
    fn: Callable,
    *args,
    sync_timeout: float = DEFAULT_SYNC_TIMEOUT,
    metrics=None,
    combining: bool = False,
    batch_oneway: bool = False,
) -> BspRun:
    """Execute ``fn(bsp, *args)`` on ``nprocs`` BSP processes.

    Returns a :class:`BspRun` whose ``results`` list holds each process's
    return value, indexed by pid.  Raises :class:`BspError` if any
    process raised.

    ``metrics`` optionally takes a :class:`~repro.obs.MetricsRegistry`;
    each process's wall time waiting at the superstep barrier is then
    recorded into a ``bsp.barrier_wait_s`` histogram (the BSP cost
    model's ``l`` term, measured).  Observations are GIL-serialised
    plain attribute bumps, so concurrent waits are safe to record.

    ``combining=True`` turns on batched superstep communication:
    per-peer BSMP message combining and per-pair DRMA batching (see
    :mod:`repro.bsp.messages` / :mod:`repro.bsp.drma`).  Results and
    delivery order are identical; only the ORB call / wire accounting
    in the returned :class:`BspRun` changes.

    ``batch_oneway=True`` models the ORB's transport-level oneway
    batching instead: logical call counts stay put, but per-pair sends
    and puts share wire frames flushed at the barrier, so the
    ``bsmp_frames`` / ``drma_frames`` counters drop from O(messages)
    to O(communicating pairs).  Results are identical.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    barrier_hist = None
    if metrics is not None:
        from repro.obs.metrics import LATENCY_BOUNDS_S
        barrier_hist = metrics.histogram("bsp.barrier_wait_s",
                                         LATENCY_BOUNDS_S)
    buffers = MessageBuffers(nprocs, combining=combining,
                             batch_oneway=batch_oneway)
    registers = Registers(nprocs, batched=combining,
                          batch_oneway=batch_oneway)
    state = _SharedState(nprocs, buffers, registers)

    def on_barrier():
        try:
            buffers.exchange()
            registers.synchronize()
            state.supersteps += 1
        except Exception as exc:   # e.g. a put to an unregistered variable
            with state.lock:
                state.errors.append((-1, exc))
            raise

    barrier = threading.Barrier(nprocs, action=on_barrier)
    results: list = [None] * nprocs

    def sync_for(pid: int) -> Callable[[], None]:
        def sync():
            started = perf_counter() if barrier_hist is not None else 0.0
            try:
                barrier.wait(timeout=sync_timeout)
            except threading.BrokenBarrierError:
                with state.lock:
                    all_done = state.done >= nprocs
                if all_done:
                    return   # drain release: the run is over
                raise BspError(f"pid {pid}: run aborted at the barrier")
            finally:
                if barrier_hist is not None:
                    barrier_hist.observe(perf_counter() - started)
        return sync

    def worker(pid: int) -> None:
        context = BspContext(
            pid, nprocs, buffers, registers, sync_for(pid)
        )
        failed = False
        try:
            results[pid] = fn(context, *args)
        except BspError:
            failed = True
        except Exception as exc:
            failed = True
            with state.lock:
                state.errors.append((pid, exc))
            barrier.abort()
        with state.lock:
            state.done += 1
            last = state.done >= nprocs
        if last:
            barrier.abort()   # release any peers draining at the barrier
            return
        if failed:
            return
        # Drain: keep answering barriers until everyone has returned.
        while True:
            with state.lock:
                if state.done >= nprocs:
                    return
            try:
                barrier.wait(timeout=sync_timeout)
            except threading.BrokenBarrierError:
                with state.lock:
                    if state.done >= nprocs:
                        return
                return   # aborted run; errors reported by the raiser

    threads = [
        threading.Thread(target=worker, args=(pid,), name=f"bsp-{pid}")
        for pid in range(nprocs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if state.errors:
        details = "; ".join(
            f"pid {pid}: {type(exc).__name__}: {exc}"
            for pid, exc in sorted(state.errors)
        )
        raise BspError(f"BSP run failed: {details}")
    return BspRun(
        results=results,
        supersteps=state.supersteps,
        messages_sent=buffers.messages_sent,
        comm_bytes=buffers.bytes_estimate,
        puts_applied=registers.puts_applied,
        orb_calls=buffers.orb_calls,
        drma_calls=registers.drma_calls,
        wire_bytes=buffers.wire_bytes,
        bsmp_frames=buffers.frames,
        drma_frames=registers.frames,
        bytes_saved=buffers.bytes_saved,
    )
