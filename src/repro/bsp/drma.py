"""DRMA — direct remote memory access over registered variables.

``put`` requests issued during superstep *s* are applied at the
synchronisation, in (writer pid, issue order); ``get`` reads the value a
variable had at the *start* of the current superstep, matching BSPlib
semantics where communication only takes effect at the barrier.
"""

import copy
from typing import Any


class UnregisteredVariable(Exception):
    """A put/get referenced a name the owner never registered."""


class Registers:
    """Registered memory for ``nprocs`` processes.

    With ``batched=True`` (opt-in) DRMA traffic is accounted per
    (process, owner) pair per superstep instead of per request: all
    puts a writer issues against one owner ride a single batched ORB
    call, and likewise all gets a reader issues against one owner.
    Semantics are identical — only ``drma_calls`` changes.
    """

    def __init__(self, nprocs: int, batched: bool = False):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.batched = batched
        self._values: list[dict] = [{} for _ in range(nprocs)]
        self._snapshot: list[dict] = [{} for _ in range(nprocs)]
        self._pending_puts: list[list] = [[] for _ in range(nprocs)]
        self.puts_applied = 0
        #: DRMA ORB invocations: one per put/get without batching, one
        #: per (process, owner) pair per superstep with it.
        self.drma_calls = 0
        self._put_pairs: set = set()
        self._get_pairs: set = set()

    def register(self, pid: int, name: str, value: Any) -> None:
        """Declare a variable on ``pid`` and set its initial value."""
        self._values[pid][name] = value
        self._snapshot[pid][name] = copy.deepcopy(value)

    def local_read(self, pid: int, name: str) -> Any:
        """Read a process's own live variable."""
        try:
            return self._values[pid][name]
        except KeyError:
            raise UnregisteredVariable(f"pid {pid} has no variable {name!r}") from None

    def local_write(self, pid: int, name: str, value: Any) -> None:
        """Write a process's own live variable."""
        if name not in self._values[pid]:
            raise UnregisteredVariable(f"pid {pid} has no variable {name!r}")
        self._values[pid][name] = value

    def get(self, owner: int, name: str, reader: int = None) -> Any:
        """Remote read: the value as of the last synchronisation."""
        if not 0 <= owner < self.nprocs:
            raise ValueError(f"owner pid {owner} out of range")
        self._count_call(self._get_pairs, reader, owner)
        try:
            return copy.deepcopy(self._snapshot[owner][name])
        except KeyError:
            raise UnregisteredVariable(
                f"pid {owner} has no variable {name!r}"
            ) from None

    def put(self, writer: int, owner: int, name: str, value: Any) -> None:
        """Remote write: queued, applied at the next synchronisation."""
        if not 0 <= owner < self.nprocs:
            raise ValueError(f"owner pid {owner} out of range")
        self._count_call(self._put_pairs, writer, owner)
        self._pending_puts[writer].append((owner, name, copy.deepcopy(value)))

    def _count_call(self, pairs: set, source, owner: int) -> None:
        if not self.batched or source is None:
            self.drma_calls += 1
            return
        if (source, owner) not in pairs:
            pairs.add((source, owner))
            self.drma_calls += 1

    def synchronize(self) -> None:
        """Apply pending puts (writer order) and refresh get-snapshots."""
        for writer in range(self.nprocs):
            for owner, name, value in self._pending_puts[writer]:
                if name not in self._values[owner]:
                    raise UnregisteredVariable(
                        f"put to unregistered {name!r} on pid {owner}"
                    )
                self._values[owner][name] = value
                self.puts_applied += 1
            self._pending_puts[writer] = []
        self._put_pairs.clear()
        self._get_pairs.clear()
        self._snapshot = [
            {name: copy.deepcopy(value) for name, value in proc.items()}
            for proc in self._values
        ]
