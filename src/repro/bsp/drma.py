"""DRMA — direct remote memory access over registered variables.

``put`` requests issued during superstep *s* are applied at the
synchronisation, in (writer pid, issue order); ``get`` reads the value a
variable had at the *start* of the current superstep, matching BSPlib
semantics where communication only takes effect at the barrier.
"""

import copy
from typing import Any


class UnregisteredVariable(Exception):
    """A put/get referenced a name the owner never registered."""


class Registers:
    """Registered memory for ``nprocs`` processes.

    With ``batched=True`` (opt-in) DRMA traffic is accounted per
    (process, owner) pair per superstep instead of per request: all
    puts a writer issues against one owner ride a single batched ORB
    call, and likewise all gets a reader issues against one owner.
    Semantics are identical — only ``drma_calls`` changes.

    ``batch_oneway=True`` (opt-in) models the ORB's transport-level
    oneway batching: puts are oneway calls, so a writer's puts to one
    owner share a single wire frame per superstep (``frames`` drops to
    O(pairs)); gets are synchronous request/reply and never batch.
    """

    def __init__(self, nprocs: int, batched: bool = False,
                 batch_oneway: bool = False):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.batched = batched
        self.batch_oneway = batch_oneway
        self._values: list[dict] = [{} for _ in range(nprocs)]
        self._snapshot: list[dict] = [{} for _ in range(nprocs)]
        self._pending_puts: list[list] = [[] for _ in range(nprocs)]
        self.puts_applied = 0
        #: DRMA ORB invocations: one per put/get without batching, one
        #: per (process, owner) pair per superstep with it.
        self.drma_calls = 0
        #: Wire frames the transport would emit.  Tracks ``drma_calls``
        #: except when ``batch_oneway`` coalesces a writer's puts.
        self.frames = 0
        self._put_pairs: set = set()
        self._get_pairs: set = set()
        self._put_frame_pairs: set = set()

    def register(self, pid: int, name: str, value: Any) -> None:
        """Declare a variable on ``pid`` and set its initial value."""
        self._values[pid][name] = value
        self._snapshot[pid][name] = copy.deepcopy(value)

    def local_read(self, pid: int, name: str) -> Any:
        """Read a process's own live variable."""
        try:
            return self._values[pid][name]
        except KeyError:
            raise UnregisteredVariable(f"pid {pid} has no variable {name!r}") from None

    def local_write(self, pid: int, name: str, value: Any) -> None:
        """Write a process's own live variable."""
        if name not in self._values[pid]:
            raise UnregisteredVariable(f"pid {pid} has no variable {name!r}")
        self._values[pid][name] = value

    def get(self, owner: int, name: str, reader: int = None) -> Any:
        """Remote read: the value as of the last synchronisation."""
        if not 0 <= owner < self.nprocs:
            raise ValueError(f"owner pid {owner} out of range")
        if self._count_call(self._get_pairs, reader, owner):
            self.frames += 1   # request/reply: oneway batching can't help
        try:
            return copy.deepcopy(self._snapshot[owner][name])
        except KeyError:
            raise UnregisteredVariable(
                f"pid {owner} has no variable {name!r}"
            ) from None

    def put(self, writer: int, owner: int, name: str, value: Any) -> None:
        """Remote write: queued, applied at the next synchronisation."""
        if not 0 <= owner < self.nprocs:
            raise ValueError(f"owner pid {owner} out of range")
        counted = self._count_call(self._put_pairs, writer, owner)
        if self.batch_oneway and writer is not None:
            # Puts are oneway: all of a writer's puts to one owner ride
            # a single batched frame flushed at the barrier.
            if (writer, owner) not in self._put_frame_pairs:
                self._put_frame_pairs.add((writer, owner))
                self.frames += 1
        elif counted:
            self.frames += 1
        self._pending_puts[writer].append((owner, name, copy.deepcopy(value)))

    def _count_call(self, pairs: set, source, owner: int) -> bool:
        if not self.batched or source is None:
            self.drma_calls += 1
            return True
        if (source, owner) not in pairs:
            pairs.add((source, owner))
            self.drma_calls += 1
            return True
        return False

    def synchronize(self) -> None:
        """Apply pending puts (writer order) and refresh get-snapshots."""
        for writer in range(self.nprocs):
            for owner, name, value in self._pending_puts[writer]:
                if name not in self._values[owner]:
                    raise UnregisteredVariable(
                        f"put to unregistered {name!r} on pid {owner}"
                    )
                self._values[owner][name] = value
                self.puts_applied += 1
            self._pending_puts[writer] = []
        self._put_pairs.clear()
        self._get_pairs.clear()
        self._put_frame_pairs.clear()
        self._snapshot = [
            {name: copy.deepcopy(value) for name, value in proc.items()}
            for proc in self._values
        ]
