"""BSP parallel programming support.

The paper adopts Valiant's Bulk Synchronous Parallel model "imposing
frequent synchronizations among application nodes" (Section 3), because
superstep boundaries are natural checkpoint/migration points.

Two layers:

* :mod:`repro.bsp.runtime` — a real, executable BSP library (processes,
  supersteps, BSMP message passing, DRMA put/get).  Example applications
  compute actual results with it.
* :mod:`repro.bsp.gridexec` — the grid-side coordinator that paces a BSP
  job's tasks through supersteps on InteGrade nodes, inserting
  communication delays and superstep-boundary checkpoints.
"""

from repro.bsp.runtime import BspError, BspRun, run_bsp
from repro.bsp.process import BspContext
from repro.bsp.gridexec import BspGridCoordinator
from repro.bsp.programs import (
    all_reduce,
    block_range,
    broadcast,
    gather_to_root,
    prefix_sums,
    reduce_to_root,
    sample_sort,
    stencil_1d,
)

__all__ = [
    "BspError",
    "BspRun",
    "run_bsp",
    "BspContext",
    "BspGridCoordinator",
    "all_reduce",
    "block_range",
    "broadcast",
    "gather_to_root",
    "prefix_sums",
    "reduce_to_root",
    "sample_sort",
    "stencil_1d",
]
