"""A library of classic BSP kernels.

Ready-made, tested building blocks for the "broad range of parallel
applications" the paper targets.  Every kernel is a plain BSP program
(first argument: :class:`~repro.bsp.process.BspContext`), runnable with
:func:`~repro.bsp.runtime.run_bsp` and registrable for grid execution
via :mod:`repro.apps.registry`.

Collectives follow BSP costing conventions: ``reduce_to_root`` is one
superstep; ``broadcast`` and ``all_reduce`` two; ``prefix_sums`` uses a
logarithmic pointer-doubling schedule; ``sample_sort`` is the classic
three-superstep distribution sort.
"""

import operator
from functools import reduce as _reduce


def block_range(pid: int, nprocs: int, n: int) -> range:
    """The contiguous block of indices process ``pid`` owns."""
    return range(pid * n // nprocs, (pid + 1) * n // nprocs)


def reduce_to_root(bsp, value, op=operator.add, root: int = 0):
    """Combine every process's ``value`` at ``root`` (one superstep).

    Returns the reduction on ``root`` and None elsewhere.
    """
    bsp.send(root, value)
    bsp.sync()
    if bsp.pid == root:
        return _reduce(op, bsp.messages())
    return None


def broadcast(bsp, value, root: int = 0):
    """Deliver ``root``'s ``value`` to every process (two supersteps)."""
    if bsp.pid == root:
        for other in range(bsp.nprocs):
            if other != root:
                bsp.send(other, value)
    bsp.sync()
    if bsp.pid == root:
        return value
    (received,) = bsp.messages()
    return received


def all_reduce(bsp, value, op=operator.add, root: int = 0):
    """Every process ends with the reduction of all values."""
    total = reduce_to_root(bsp, value, op, root)
    return broadcast(bsp, total, root)


def prefix_sums(bsp, value, op=operator.add):
    """Inclusive scan across pids by pointer doubling (log supersteps).

    Process ``p`` returns op-fold of the values of processes 0..p.
    Every process executes the same number of supersteps.
    """
    accumulator = value
    distance = 1
    while distance < bsp.nprocs:
        if bsp.pid + distance < bsp.nprocs:
            bsp.send(bsp.pid + distance, accumulator)
        bsp.sync()
        for received in bsp.messages():
            accumulator = op(received, accumulator)
        distance *= 2
    return accumulator


def gather_to_root(bsp, value, root: int = 0):
    """Collect (pid, value) pairs at ``root``; returns the list in pid
    order on ``root``, None elsewhere."""
    bsp.send(root, (bsp.pid, value))
    bsp.sync()
    if bsp.pid == root:
        pairs = sorted(bsp.messages())
        return [v for _, v in pairs]
    return None


def sample_sort(bsp, block):
    """Classic BSP distribution sort.

    Each process contributes an unsorted ``block``; returns its slice of
    the globally sorted sequence (slices concatenated in pid order are
    the sorted whole).  Three communication supersteps: splitter
    selection, all-to-all redistribution, and an alignment barrier.
    """
    p = bsp.nprocs
    local = sorted(block)
    # 1. Everyone sends p regular samples of its block to pid 0.
    samples = [
        local[(i * len(local)) // p] for i in range(p)
    ] if local else []
    bsp.send(0, samples)
    bsp.sync()
    # 2. pid 0 picks p-1 splitters and broadcasts them.
    if bsp.pid == 0:
        pooled = sorted(x for chunk in bsp.messages() for x in chunk)
        splitters = [
            pooled[((i + 1) * len(pooled)) // p] for i in range(p - 1)
        ] if pooled else []
        for other in range(1, p):
            bsp.send(other, splitters)
    bsp.sync()
    if bsp.pid != 0:
        (splitters,) = bsp.messages()
    # 3. All-to-all: route each element to its destination bucket.
    buckets = [[] for _ in range(p)]
    for x in local:
        dest = 0
        while dest < len(splitters) and x >= splitters[dest]:
            dest += 1
        buckets[dest].append(x)
    for dest in range(p):
        bsp.send(dest, buckets[dest])
    bsp.sync()
    merged = sorted(x for chunk in bsp.messages() for x in chunk)
    return merged


def stencil_1d(bsp, block, steps, update):
    """Iterated 1-D halo-exchange stencil.

    ``block`` is this process's slice of the array; each step exchanges
    boundary cells with the pid-neighbours and applies
    ``update(left, centre, right)`` per cell (missing neighbours are
    None at the domain edges).  Returns the final block after ``steps``
    supersteps.
    """
    cells = list(block)
    for _ in range(steps):
        if bsp.pid > 0 and cells:
            bsp.send(bsp.pid - 1, ("from_right", cells[0]))
        if bsp.pid < bsp.nprocs - 1 and cells:
            bsp.send(bsp.pid + 1, ("from_left", cells[-1]))
        bsp.sync()
        left_halo = None
        right_halo = None
        for tag, value in bsp.messages():
            if tag == "from_left":
                left_halo = value
            else:
                right_halo = value
        new_cells = []
        for i, centre in enumerate(cells):
            left = cells[i - 1] if i > 0 else left_halo
            right = cells[i + 1] if i < len(cells) - 1 else right_halo
            new_cells.append(update(left, centre, right))
        cells = new_cells
    return cells
