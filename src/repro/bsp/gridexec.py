"""Grid-side BSP execution: superstep pacing, communication cost,
checkpoints, and rollback.

The GRM gang-schedules a BSP job's processes; this coordinator then
drives them superstep by superstep:

* each process may compute only up to the current superstep barrier
  (a *work limit* on its LRM);
* when every member reaches the barrier, the coordinator charges the
  superstep's communication time (from the cluster network model) and
  releases the next superstep;
* every ``checkpoint_every`` supersteps it saves portable per-member
  checkpoints into the cluster repository;
* on eviction or node crash, all surviving members are rolled back to
  the latest *globally consistent* checkpointed superstep and the lost
  member is re-placed by the GRM, resuming from that same superstep.
"""

from typing import Optional

from repro.apps.job import Job, TaskState
from repro.apps.registry import DEFAULT_REGISTRY, ProgramRegistry
from repro.checkpoint.recovery import RecoveryManager
from repro.checkpoint.store import MemoryCheckpointStore
from repro.orb.exceptions import OrbError
from repro.sim.events import EventLoop

DEFAULT_SUPERSTEPS = 10
DEFAULT_COMM_BYTES = 100_000
BARRIER_LATENCY_S = 0.05


class BspGridCoordinator:
    """Coordinates one BSP job's supersteps across grid nodes."""

    def __init__(
        self,
        loop: EventLoop,
        grm,
        job: Job,
        checkpoint_store: Optional[MemoryCheckpointStore] = None,
        registry: Optional[ProgramRegistry] = None,
    ):
        self._loop = loop
        self._grm = grm
        self.job = job
        spec = job.spec
        self.supersteps = int(spec.metadata.get("supersteps", DEFAULT_SUPERSTEPS))
        if self.supersteps <= 0:
            raise ValueError("a BSP job needs at least one superstep")
        self.comm_bytes = int(
            spec.metadata.get("superstep_comm_bytes", DEFAULT_COMM_BYTES)
        )
        self.checkpoint_every = spec.checkpoint_every_supersteps
        #: Modelled seconds to materialize a checkpoint batch (chunk
        #: serialization + store write).  0 keeps the seed's
        #: instantaneous-save path byte-for-byte.
        self.checkpoint_write_s = float(
            spec.metadata.get("checkpoint_write_s", 0.0)
        )
        #: With a nonzero write time: overlap the write with the next
        #: superstep (only the dirty-chunk scan sits on the barrier
        #: critical path) instead of stalling the release until the
        #: write commits.
        self.pipelined_checkpoints = bool(
            spec.metadata.get("pipelined_checkpoints", False)
        )
        #: Run the functional program with batched superstep comms.
        self.combining = bool(spec.metadata.get("bsp_combining", False))
        #: Model transport-level oneway batching in the functional run.
        self.batch_oneway = bool(
            spec.metadata.get("bsp_batch_oneway", False)
        )
        self.work_per_superstep = spec.work_mips / self.supersteps
        self.store = checkpoint_store
        self.recovery = RecoveryManager(
            job.job_id, [t.task_id for t in job.tasks]
        )
        self.current_superstep = 0           # the superstep now executing
        self._nodes: dict[str, str] = {}     # task_id -> node
        self._reached: set = set()
        self._completed: set = set()
        self._advancing = False
        self._advance_event = None           # pending comm-delay event
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.checkpoints_saved = 0
        self.rollbacks = 0
        self.comm_seconds_total = 0.0
        self.checkpoint_stall_s = 0.0      # blocking writes on the barrier
        self.checkpoint_overlap_s = 0.0    # pipelined writes off it
        self._pending_ckpts: list = []     # in-flight checkpoint events
        self.executed_results: Optional[list] = None
        self.executed_run = None
        #: Optional event journal (wired by Grid.enable_journal).
        self.journal = None

    def set_journal(self, journal) -> None:
        """Attach the grid's event journal (superstep/rollback events)."""
        self.journal = journal

    # -- GRM callbacks ------------------------------------------------------------

    def members_started(self, assignments: dict) -> None:
        """New or re-placed members began running; pace them."""
        for task_id, node in assignments.items():
            self._nodes[task_id] = node
            self._set_limit(task_id, self.current_superstep + 1)

    def member_reached_limit(self, task_id: str, node: str) -> None:
        """A member hit the current superstep barrier."""
        if self._nodes.get(task_id) != node:
            return   # stale notification from a node it no longer runs on
        self._reached.add(task_id)
        self._maybe_finish_superstep()

    def member_evicted(self, task_id: str, node: str) -> None:
        """A member was lost; roll everyone back to a consistent cut."""
        self._nodes.pop(task_id, None)
        self._reached.discard(task_id)
        self.rollbacks += 1
        # A barrier crossing may be mid-flight (waiting out the modelled
        # communication delay); the rollback supersedes it.
        if self._advance_event is not None:
            self._advance_event.cancel()
            self._advance_event = None
        # Likewise any checkpoint write still in flight: its records were
        # never committed to the recovery manager, so the rollback point
        # ignores it and re-checkpointing the superstep stays legal.
        for handle in self._pending_ckpts:
            handle.cancel()
        self._pending_ckpts.clear()
        self._advancing = False
        rollback_superstep = self.recovery.rollback_point() \
            if self.checkpoint_every > 0 else 0
        rollback_superstep = min(rollback_superstep, self.current_superstep)
        target_progress = rollback_superstep * self.work_per_superstep
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "checkpoint_restored", node=node,
                job_id=self.job.job_id, task_id=task_id,
                superstep=rollback_superstep,
                from_superstep=self.current_superstep,
                survivors=len(self._nodes),
            )
        self.current_superstep = rollback_superstep
        self._reached.clear()
        # Roll surviving members back and re-arm the barrier, accounting
        # the progress they lose past the consistent cut as wasted work.
        for member, member_node in list(self._nodes.items()):
            stub = self._grm.lrm_stub(member_node)
            if stub is None:
                continue
            try:
                progress = stub.get_progress(member)
                stub.rollback_task(member, target_progress)
                stub.set_work_limit(
                    member, self._limit_mips(rollback_superstep + 1)
                )
            except OrbError:
                continue
            survivor = self._task(member)
            if survivor is not None:
                survivor.wasted_mips += max(0.0, progress - target_progress)
                survivor.progress_mips = min(
                    target_progress, survivor.work_mips
                )
        # The lost member restarts from the checkpointed superstep.  The
        # GRM's eviction handling charged its full progress as wasted
        # (the LRM had no local checkpoint); the part the cluster
        # repository preserved was not actually lost — credit it back and
        # restore it (a roll *forward* from zero is intentional: the
        # state lives in the checkpoint repository, not on the dead node).
        entry = self._task(task_id)
        if entry is not None:
            entry.wasted_mips = max(
                0.0, entry.wasted_mips - target_progress
            )
            entry.progress_mips = min(target_progress, entry.work_mips)

    def member_completed(self, task_id: str) -> None:
        self._completed.add(task_id)
        self._nodes.pop(task_id, None)
        if len(self._completed) == len(self.job.tasks):
            for handle in self._pending_ckpts:
                handle.cancel()   # nothing left to restore from them
            self._pending_ckpts.clear()
            self._execute_program()

    def _execute_program(self) -> None:
        """Functional simulation: run the real BSP program for results.

        The grid execution modelled the *cost*; if the spec's program
        name is registered, the actual computation now runs on the
        executable BSP runtime and each process's return value lands on
        its task, exactly like a sequential payload result.
        """
        name = self.job.spec.program
        if name is None or name not in self.registry:
            return
        from repro.bsp.runtime import BspError, run_bsp

        fn, default_args = self.registry.get(name)
        args = tuple(self.job.spec.metadata.get("program_args", default_args))
        try:
            run = run_bsp(
                len(self.job.tasks), fn, *args, combining=self.combining,
                batch_oneway=self.batch_oneway,
            )
        except BspError as exc:
            self.executed_results = None
            for task in self.job.tasks:
                task.result = {"__error__": str(exc)}
            return
        self.executed_run = run
        self.executed_results = run.results
        for task, result in zip(self.job.tasks, run.results):
            task.result = result

    # -- superstep machinery ---------------------------------------------------------

    def _task(self, task_id: str):
        for task in self.job.tasks:
            if task.task_id == task_id:
                return task
        return None

    def _limit_mips(self, superstep_end: int) -> float:
        if superstep_end >= self.supersteps:
            return float("inf")   # last barrier passed: run to completion
        return superstep_end * self.work_per_superstep

    def _set_limit(self, task_id: str, superstep_end: int) -> None:
        node = self._nodes.get(task_id)
        if node is None:
            return
        stub = self._grm.lrm_stub(node)
        if stub is None:
            return
        try:
            stub.set_work_limit(task_id, self._limit_mips(superstep_end))
        except OrbError:
            pass

    def _active_members(self) -> set:
        return {
            t.task_id
            for t in self.job.tasks
            if t.state is TaskState.RUNNING
        }

    def _maybe_finish_superstep(self) -> None:
        active = self._active_members()
        if not active or self._advancing:
            return
        if not active <= (self._reached | self._completed):
            return
        if set(self._nodes) != active:
            return   # someone is being re-placed; wait for them
        self._advancing = True
        comm_delay = self._communication_seconds()
        self.comm_seconds_total += comm_delay
        self._advance_event = self._loop.schedule(
            comm_delay, self._advance_superstep
        )

    def _group_of_task(self) -> dict:
        """task_id -> virtual group index (everyone in group 0 if none)."""
        topology = self.job.spec.topology
        groups: dict[str, int] = {}
        if topology is None:
            for task in self.job.tasks:
                groups[task.task_id] = 0
            return groups
        index = 0
        for group_number, group in enumerate(topology.groups):
            for _ in range(group.count):
                groups[self.job.tasks[index].task_id] = group_number
                index += 1
        return groups

    def _communication_seconds(self) -> float:
        """Superstep exchange time with virtual-group traffic locality.

        Each process injects ``comm_bytes`` per superstep: INTRA_FRACTION
        of it to its own virtual group, the rest spread over other
        groups.  Bytes between processes on the same LAN segment load
        that segment; bytes between segments load the (slower) path
        between them.  The superstep pays the most-loaded medium, plus
        path latency and the barrier — so scattering a group across a
        slow uplink hurts, which is exactly what topology-aware
        placement avoids.
        """
        INTRA_FRACTION = 0.8
        network = getattr(self._grm, "network", None)
        members = sorted(self._nodes)   # task ids
        n = len(members)
        if network is None or n < 2 or self.comm_bytes <= 0:
            return BARRIER_LATENCY_S
        groups = self._group_of_task()
        segment_of = {}
        for task_id in members:
            try:
                segment_of[task_id] = network.segment_of(
                    self._nodes[task_id]
                )
            except KeyError:
                return BARRIER_LATENCY_S

        group_sizes: dict[int, int] = {}
        for task_id in members:
            group = groups.get(task_id, 0)
            group_sizes[group] = group_sizes.get(group, 0) + 1

        load_bytes: dict[tuple, float] = {}   # (seg_a, seg_b) sorted -> bytes
        for sender in members:
            own_group = groups.get(sender, 0)
            own_peers = group_sizes[own_group] - 1
            other_peers = n - group_sizes[own_group]
            for receiver in members:
                if receiver == sender:
                    continue
                if groups.get(receiver, 0) == own_group:
                    share = (
                        INTRA_FRACTION / own_peers if own_peers else 0.0
                    )
                else:
                    share = (
                        (1.0 - INTRA_FRACTION) / other_peers
                        if other_peers else 0.0
                    )
                key = tuple(sorted(
                    (segment_of[sender], segment_of[receiver])
                ))
                load_bytes[key] = load_bytes.get(key, 0.0) + \
                    self.comm_bytes * share

        worst_seconds = 0.0
        worst_latency_ms = 0.0
        for (seg_a, seg_b), nbytes in load_bytes.items():
            if seg_a == seg_b:
                link = network.segment_internal(seg_a)
            else:
                node_a = next(
                    self._nodes[t] for t in members if segment_of[t] == seg_a
                )
                node_b = next(
                    self._nodes[t] for t in members if segment_of[t] == seg_b
                )
                link = network.link_between(node_a, node_b)
                if link is None:
                    continue
            seconds = (nbytes * 8) / (link.bandwidth_mbps * 1e6)
            worst_seconds = max(worst_seconds, seconds)
            worst_latency_ms = max(worst_latency_ms, link.latency_ms)
        return worst_seconds + worst_latency_ms / 1000.0 + BARRIER_LATENCY_S

    def _advance_superstep(self) -> None:
        self._advance_event = None
        finished = self.current_superstep + 1
        self.current_superstep = finished
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "bsp_superstep", job_id=self.job.job_id,
                superstep=finished, supersteps=self.supersteps,
                members=len(self._nodes),
            )
        due = (
            self.checkpoint_every > 0
            and finished % self.checkpoint_every == 0
            and finished < self.supersteps
        )
        if due and self.checkpoint_write_s > 0 \
                and not self.pipelined_checkpoints:
            # Blocking write: the next superstep is not released until
            # the checkpoint commits — the whole write sits on the
            # barrier critical path (``_advancing`` stays True so a
            # straggler notification cannot re-trigger the advance).
            self.checkpoint_stall_s += self.checkpoint_write_s
            self._schedule_checkpoint(
                finished, self._finish_blocking_checkpoint
            )
            return
        self._advancing = False
        if due:
            if self.checkpoint_write_s > 0:
                # Pipelined: the dirty-chunk scan is the only cost on
                # the critical path; the materializing write overlaps
                # the next superstep and commits when its event fires.
                self.checkpoint_overlap_s += self.checkpoint_write_s
                self._schedule_checkpoint(finished, self._checkpoint)
            else:
                self._checkpoint(finished)
        self._release_superstep(finished)

    def _release_superstep(self, finished: int) -> None:
        self._reached.clear()
        for task_id in list(self._nodes):
            self._set_limit(task_id, finished + 1)

    def _schedule_checkpoint(self, superstep: int, commit) -> None:
        def fire():
            self._pending_ckpts.remove(handle)
            commit(superstep)
        handle = self._loop.schedule(self.checkpoint_write_s, fire)
        self._pending_ckpts.append(handle)

    def _finish_blocking_checkpoint(self, superstep: int) -> None:
        self._checkpoint(superstep)
        self._advancing = False
        self._release_superstep(superstep)

    def _checkpoint(self, superstep: int) -> None:
        progress = superstep * self.work_per_superstep
        for task_id in self.recovery.members:
            if task_id in self._completed:
                continue
            if self.store is not None:
                self.store.save(
                    task_id,
                    {
                        "job_id": self.job.job_id,
                        "superstep": superstep,
                        "progress_mips": progress,
                    },
                    self._loop.now,
                )
            try:
                self.recovery.record_checkpoint(task_id, superstep)
            except ValueError:
                pass   # re-checkpoint after rollback to the same superstep
        self.checkpoints_saved += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "checkpoint_saved", job_id=self.job.job_id,
                superstep=superstep,
                members=len(self.recovery.members) - len(self._completed),
            )

    # -- monitoring --------------------------------------------------------------------

    def status(self) -> dict:
        return {
            "job_id": self.job.job_id,
            "superstep": self.current_superstep,
            "supersteps": self.supersteps,
            "members_running": len(self._nodes),
            "members_completed": len(self._completed),
            "rollbacks": self.rollbacks,
            "checkpoints_saved": self.checkpoints_saved,
            "checkpoint_stall_s": self.checkpoint_stall_s,
            "checkpoint_overlap_s": self.checkpoint_overlap_s,
            "checkpoints_pending": len(self._pending_ckpts),
        }
