"""The per-process BSP API handed to user code."""

from typing import Any

from repro.bsp.drma import Registers
from repro.bsp.messages import MessageBuffers


class BspContext:
    """What a BSP process sees: its pid, messaging, and registered memory.

    A process function receives one of these as its first argument::

        def program(bsp, n):
            local = compute_part(bsp.pid, bsp.nprocs, n)
            bsp.send(0, local)
            bsp.sync()
            if bsp.pid == 0:
                return sum(bsp.messages())
    """

    def __init__(
        self,
        pid: int,
        nprocs: int,
        buffers: MessageBuffers,
        registers: Registers,
        sync_callback,
    ):
        self.pid = pid
        self.nprocs = nprocs
        self._buffers = buffers
        self._registers = registers
        self._sync = sync_callback
        self.superstep = 0

    # -- BSMP ---------------------------------------------------------------

    def send(self, dest: int, payload: Any) -> None:
        """Send a message, delivered to ``dest`` after the next sync."""
        self._buffers.send(self.pid, dest, payload)

    def messages(self) -> list:
        """Messages delivered to this process at the last sync."""
        return list(self._buffers.inbox(self.pid))

    # -- DRMA -----------------------------------------------------------------

    def register(self, name: str, value: Any) -> None:
        """Register a named variable others can put/get."""
        self._registers.register(self.pid, name, value)

    def read(self, name: str) -> Any:
        """Read this process's own registered variable (live value)."""
        return self._registers.local_read(self.pid, name)

    def write(self, name: str, value: Any) -> None:
        """Write this process's own registered variable."""
        self._registers.local_write(self.pid, name, value)

    def get(self, owner: int, name: str) -> Any:
        """Read ``owner``'s variable as of the last synchronisation."""
        return self._registers.get(owner, name, reader=self.pid)

    def put(self, owner: int, name: str, value: Any) -> None:
        """Write ``owner``'s variable, effective at the next sync."""
        self._registers.put(self.pid, owner, name, value)

    # -- synchronisation ----------------------------------------------------------

    def sync(self) -> None:
        """End the superstep: barrier + message/put delivery."""
        self._sync()
        self.superstep += 1
