"""Security: sandboxed task execution and request authentication."""

from repro.security.auth import (
    AuthenticationError,
    Credentials,
    KeyRing,
    is_authenticated,
)
from repro.security.sandbox import (
    Sandbox,
    SandboxPolicy,
    SandboxViolation,
)

__all__ = [
    "AuthenticationError",
    "Credentials",
    "KeyRing",
    "is_authenticated",
    "Sandbox",
    "SandboxPolicy",
    "SandboxViolation",
]
