"""Message authentication for ORB requests.

Section 3 lists "authentication, and cryptography" among the security
mechanisms under investigation.  This module provides shared-secret
request authentication: a client ORB signs each request with an
HMAC-SHA256 over the payload, and a server ORB configured to require
authentication verifies the signature against its keyring before
dispatching.  Tampering, unknown principals, and wrong keys are all
rejected *before* any servant code runs.

Envelope format (prepended to the CDR request payload)::

    magic     "IGAU"          (4 bytes)
    plen      u16 BE          principal length
    principal UTF-8 bytes
    signature 32 bytes        HMAC-SHA256(secret, principal || payload)
    payload   original request bytes
"""

import hashlib
import hmac
import struct
from typing import Optional, Tuple

MAGIC = b"IGAU"
_PLEN = struct.Struct(">H")
_SIG_LEN = hashlib.sha256().digest_size


class AuthenticationError(Exception):
    """The request could not be authenticated."""


class Credentials:
    """A principal identity plus its shared secret (client side)."""

    def __init__(self, principal: str, secret: bytes):
        if not principal:
            raise ValueError("principal must be non-empty")
        if not secret:
            raise ValueError("secret must be non-empty")
        self.principal = principal
        self._secret = bytes(secret)

    def _signature(self, payload: bytes) -> bytes:
        material = self.principal.encode("utf-8") + payload
        return hmac.new(self._secret, material, hashlib.sha256).digest()

    def wrap(self, payload: bytes) -> bytes:
        """Sign a request payload into an authenticated envelope."""
        principal = self.principal.encode("utf-8")
        return (
            MAGIC + _PLEN.pack(len(principal)) + principal
            + self._signature(payload) + payload
        )


class KeyRing:
    """Known principals and their secrets (server side)."""

    def __init__(self):
        self._secrets: dict[str, bytes] = {}

    def add(self, principal: str, secret: bytes) -> None:
        if not principal or not secret:
            raise ValueError("principal and secret must be non-empty")
        self._secrets[principal] = bytes(secret)

    def remove(self, principal: str) -> None:
        self._secrets.pop(principal, None)

    def __contains__(self, principal: str) -> bool:
        return principal in self._secrets

    def credentials_for(self, principal: str) -> Credentials:
        """Build client credentials from a held secret."""
        try:
            return Credentials(principal, self._secrets[principal])
        except KeyError:
            raise AuthenticationError(
                f"no secret for principal {principal!r}"
            ) from None

    def unwrap(self, envelope: bytes) -> Tuple[str, bytes]:
        """Verify an envelope; returns (principal, payload) or raises."""
        if not envelope.startswith(MAGIC):
            raise AuthenticationError("request is not authenticated")
        offset = len(MAGIC)
        if len(envelope) < offset + _PLEN.size:
            raise AuthenticationError("truncated auth envelope")
        (plen,) = _PLEN.unpack_from(envelope, offset)
        offset += _PLEN.size
        end_principal = offset + plen
        end_signature = end_principal + _SIG_LEN
        if len(envelope) < end_signature:
            raise AuthenticationError("truncated auth envelope")
        try:
            principal = envelope[offset:end_principal].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise AuthenticationError(f"bad principal encoding: {exc}") from exc
        signature = envelope[end_principal:end_signature]
        payload = envelope[end_signature:]
        secret = self._secrets.get(principal)
        if secret is None:
            raise AuthenticationError(f"unknown principal {principal!r}")
        expected = hmac.new(
            secret, principal.encode("utf-8") + payload, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(signature, expected):
            raise AuthenticationError(
                f"bad signature for principal {principal!r}"
            )
        return principal, payload


def is_authenticated(payload: bytes) -> bool:
    """Does this request carry an authentication envelope?"""
    return payload.startswith(MAGIC)
