"""A capability-restricted execution context for grid tasks.

Section 3: "ensure that users who decide to export its resources to the
grid do not have its personal files and overall private information
exposed or damaged in any way ... we are investigating the use of Java
and general sandboxing".  The Python stand-in executes task code with a
whitelisted builtin set (no ``open``, no ``__import__`` outside the
allow-list), an execution budget, and an audit log of denied actions.
"""

import builtins as _builtins
import sys
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

#: Builtins that cannot touch the host: pure computation and data types.
SAFE_BUILTINS = (
    "abs", "all", "any", "bin", "bool", "bytearray", "bytes", "chr",
    "complex", "dict", "divmod", "enumerate", "filter", "float", "format",
    "frozenset", "hash", "hex", "int", "isinstance", "issubclass", "iter",
    "len", "list", "map", "max", "min", "next", "oct", "ord", "pow",
    "print", "range", "repr", "reversed", "round", "set", "slice",
    "sorted", "str", "sum", "tuple", "zip", "ValueError", "TypeError",
    "KeyError", "IndexError", "StopIteration", "ZeroDivisionError",
    "ArithmeticError", "Exception",
)


class SandboxViolation(Exception):
    """Task code attempted something the sandbox forbids."""


@dataclass(frozen=True)
class SandboxPolicy:
    """What a grid task may do on a provider's machine."""

    allowed_imports: Tuple[str, ...] = ("math",)
    max_steps: int = 1_000_000           # traced line-events budget
    allow_print: bool = False

    def __post_init__(self):
        if self.max_steps <= 0:
            raise ValueError("max_steps must be positive")


class Sandbox:
    """Runs task source code under a :class:`SandboxPolicy`."""

    def __init__(self, policy: Optional[SandboxPolicy] = None):
        self.policy = policy if policy is not None else SandboxPolicy()
        self.audit_log: list[str] = []

    # -- capability surface -------------------------------------------------

    def _denied(self, what: str):
        def attempt(*_args, **_kwargs):
            self.audit_log.append(f"denied: {what}")
            raise SandboxViolation(f"{what} is not permitted in the sandbox")
        return attempt

    def _guarded_import(self, name, globals=None, locals=None,
                        fromlist=(), level=0):
        root = name.split(".")[0]
        if root not in self.policy.allowed_imports:
            self.audit_log.append(f"denied: import {name}")
            raise SandboxViolation(f"import of {name!r} is not permitted")
        self.audit_log.append(f"allowed: import {name}")
        return _builtins.__import__(name, globals, locals, fromlist, level)

    def _build_globals(self, inputs: dict) -> dict:
        safe = {
            name: getattr(_builtins, name) for name in SAFE_BUILTINS
        }
        if not self.policy.allow_print:
            safe["print"] = self._denied("print")
        safe["__import__"] = self._guarded_import
        safe["open"] = self._denied("open")
        safe["exec"] = self._denied("exec")
        safe["eval"] = self._denied("eval")
        safe["input"] = self._denied("input")
        safe["globals"] = self._denied("globals")
        safe["vars"] = self._denied("vars")
        return {"__builtins__": safe, **dict(inputs)}

    # -- execution --------------------------------------------------------------

    def run(self, source: str, inputs: Optional[dict] = None) -> Any:
        """Execute task ``source``; its ``result`` variable is returned.

        ``inputs`` are exposed as global names.  Raises
        :class:`SandboxViolation` on any forbidden action or when the
        step budget is exhausted.
        """
        try:
            code = compile(source, "<grid-task>", "exec")
        except SyntaxError as exc:
            raise SandboxViolation(f"task code does not compile: {exc}") from exc
        task_globals = self._build_globals(inputs or {})
        steps = 0

        def tracer(frame, event, arg):
            nonlocal steps
            if event == "line":
                steps += 1
                if steps > self.policy.max_steps:
                    self.audit_log.append("denied: step budget exhausted")
                    raise SandboxViolation(
                        f"exceeded step budget of {self.policy.max_steps}"
                    )
            return tracer

        old_trace = sys.gettrace()
        sys.settrace(tracer)
        try:
            exec(code, task_globals)      # noqa: S102 — that's the point
        finally:
            sys.settrace(old_trace)
        if "result" not in task_globals:
            raise SandboxViolation(
                "task finished without assigning a 'result' variable"
            )
        return task_globals["result"]
