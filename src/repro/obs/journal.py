"""Structured event journal: typed, causally linked grid lifecycle records.

Metrics say *how much* and spans say *how long*; neither answers "node
N died — which tasks were evicted, which checkpoints brought them back,
and what did the crash cost?".  The journal records the grid's discrete
lifecycle transitions as typed events with **causal links**: an event
may name the sequence number of the event that caused it (a
``task_evicted`` caused by a ``node_down``), so forensics can rebuild
whole failure chains after the fact from the journal alone.

Design rules, identical to the metrics/tracer layers:

* **Simulated time.**  Events are stamped with the experiment's
  :class:`~repro.sim.clock.SimClock`, so they line up with metric
  snapshots and spans.
* **Deterministic.**  Recording draws no randomness and schedules no
  events; sequence numbers come from a plain counter.  Enabling the
  journal can never perturb a run.
* **Opt-in and bounded.**  Components guard on
  ``journal is not None and journal.active`` — the disabled path is one
  attribute check.  The buffer is bounded (``max_events``); past the cap
  new events are *counted* as dropped, never silently lost, and causal
  sequence numbers keep advancing so links stay valid.
* **Exportable.**  One JSON object per line
  (:func:`export_journal_jsonl`), with a schema validator
  (:func:`validate_journal`) that CI runs against the CLI's export.
"""

import json
from typing import IO, Iterable, Optional, Union

PathOrFile = Union[str, IO]

#: The closed set of event types components may record.  Holding the
#: vocabulary closed is what lets the forensics engine and the schema
#: validator reason about journals from any run.
EVENT_TYPES = frozenset({
    "node_up",
    "node_down",
    "cluster_up",
    "cluster_down",
    "task_scheduled",
    "task_evicted",
    "task_restored",
    "task_completed",
    "checkpoint_saved",
    "checkpoint_restored",
    "reservation_granted",
    "reservation_violated",
    "bsp_superstep",
    "update_dropped",
})


class JournalFormatError(ValueError):
    """An exported journal does not conform to the event schema."""


class JournalEvent:
    """One recorded lifecycle transition."""

    __slots__ = ("seq", "time", "type", "node", "job_id", "task_id",
                 "cause", "attrs")

    def __init__(self, seq, time, type, node=None, job_id=None,
                 task_id=None, cause=None, attrs=None):
        self.seq = seq
        self.time = time
        self.type = type
        self.node = node
        self.job_id = job_id
        self.task_id = task_id
        self.cause = cause
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "type": self.type,
            "node": self.node,
            "job_id": self.job_id,
            "task_id": self.task_id,
            "cause": self.cause,
            "attrs": self.attrs,
        }

    def __repr__(self):
        return (f"JournalEvent(#{self.seq} t={self.time} {self.type} "
                f"node={self.node} job={self.job_id} task={self.task_id} "
                f"cause={self.cause})")


class EventJournal:
    """Bounded, sim-time-stamped journal of typed grid events.

    ``clock`` is anything with a ``now`` attribute (normally the
    experiment's :class:`~repro.sim.clock.SimClock`); without one,
    events carry ``time: 0.0``.
    """

    def __init__(self, clock=None, max_events: int = 200_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._clock = clock
        self._max_events = max_events
        self.events: list[JournalEvent] = []
        self.recorded = 0
        self.dropped = 0
        self._seq = 0
        self._active = True

    # -- switching -----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def enable(self) -> None:
        self._active = True

    def disable(self) -> None:
        """Stop recording; sequence numbers keep advancing on re-enable."""
        self._active = False

    def clear(self) -> None:
        self.events.clear()
        self.recorded = 0
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def record(
        self,
        type: str,
        node: Optional[str] = None,
        job_id: Optional[str] = None,
        task_id: Optional[str] = None,
        cause: Optional[int] = None,
        **attrs,
    ) -> Optional[JournalEvent]:
        """Record one event; returns it (for causal chaining), or None
        when the journal is disabled.

        Past ``max_events`` the event is still constructed and counted
        (so its ``seq`` stays usable as a cause for later events) but
        not kept — ``dropped`` says how much of the tail is missing.
        """
        if not self._active:
            return None
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown journal event type {type!r}")
        seq = self._seq
        self._seq = seq + 1
        event = JournalEvent(
            seq,
            self._clock.now if self._clock is not None else 0.0,
            type, node, job_id, task_id, cause, attrs,
        )
        if len(self.events) < self._max_events:
            self.events.append(event)
            self.recorded += 1
        else:
            self.dropped += 1
        return event

    # -- queries -------------------------------------------------------------

    def select(
        self,
        type: Optional[str] = None,
        node: Optional[str] = None,
        job_id: Optional[str] = None,
        task_id: Optional[str] = None,
    ) -> list:
        """Events matching every given filter, in recording order."""
        return [
            e for e in self.events
            if (type is None or e.type == type)
            and (node is None or e.node == node)
            and (job_id is None or e.job_id == job_id)
            and (task_id is None or e.task_id == task_id)
        ]

    def __len__(self) -> int:
        return len(self.events)

    # -- observability -------------------------------------------------------

    def to_metrics(self, registry) -> None:
        """Publish journal accounting as registry views."""
        registry.view("obs.journal.recorded", lambda: self.recorded)
        registry.view("obs.journal.dropped", lambda: self.dropped)
        registry.view("obs.journal.size", lambda: len(self.events))


# -- export / import ----------------------------------------------------------


def _open_for_write(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w"), True
    return target, False


def export_journal_jsonl(events: Iterable, target: PathOrFile) -> int:
    """Write events one-JSON-object-per-line; returns the event count.

    Accepts :class:`JournalEvent` objects or already-plain dicts.
    """
    f, owned = _open_for_write(target)
    try:
        count = 0
        for event in events:
            record = event if isinstance(event, dict) else event.to_dict()
            f.write(json.dumps(record, sort_keys=True))
            f.write("\n")
            count += 1
        return count
    finally:
        if owned:
            f.close()


def load_journal_jsonl(path: str) -> list:
    """Parse a journal JSONL file into a list of event dicts."""
    events = []
    with open(path) as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise JournalFormatError(
                    f"line {i + 1} is not valid JSON: {exc}"
                ) from exc
    return events


# -- schema validation --------------------------------------------------------

_OPTIONAL_STR_FIELDS = ("node", "job_id", "task_id")


def validate_journal(events: Iterable) -> int:
    """Check parsed journal events; returns the event count.

    Enforces the schema every consumer (forensics, doctor) relies on:
    required fields with the right types, a known event type, strictly
    increasing sequence numbers, non-decreasing times, and causal links
    that point backwards (an event cannot be caused by a later one).
    Raises :class:`JournalFormatError` on the first violation.
    """
    count = 0
    last_seq = None
    last_time = None
    for i, event in enumerate(events):
        if isinstance(event, JournalEvent):
            event = event.to_dict()
        if not isinstance(event, dict):
            raise JournalFormatError(f"event {i} is not an object")
        for key in ("seq", "time", "type", "attrs"):
            if key not in event:
                raise JournalFormatError(f"event {i} is missing {key!r}")
        seq = event["seq"]
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise JournalFormatError(f"event {i}: 'seq' must be an integer")
        if last_seq is not None and seq <= last_seq:
            raise JournalFormatError(
                f"event {i}: seq {seq} does not increase past {last_seq}"
            )
        time = event["time"]
        if not isinstance(time, (int, float)) or isinstance(time, bool):
            raise JournalFormatError(f"event {i}: 'time' must be a number")
        if last_time is not None and time < last_time:
            raise JournalFormatError(
                f"event {i}: time {time} goes backwards from {last_time}"
            )
        if event["type"] not in EVENT_TYPES:
            raise JournalFormatError(
                f"event {i}: unknown type {event['type']!r}"
            )
        for key in _OPTIONAL_STR_FIELDS:
            value = event.get(key)
            if value is not None and not isinstance(value, str):
                raise JournalFormatError(
                    f"event {i}: {key!r} must be a string or null"
                )
        cause = event.get("cause")
        if cause is not None:
            if not isinstance(cause, int) or isinstance(cause, bool):
                raise JournalFormatError(
                    f"event {i}: 'cause' must be an integer or null"
                )
            if cause >= seq:
                raise JournalFormatError(
                    f"event {i}: cause {cause} does not precede seq {seq}"
                )
        if not isinstance(event["attrs"], dict):
            raise JournalFormatError(f"event {i}: 'attrs' must be an object")
        last_seq = seq
        last_time = time
        count += 1
    return count


def validate_journal_file(path: str) -> int:
    """Parse and validate a journal JSONL file; returns the event count."""
    return validate_journal(load_journal_jsonl(path))
