"""Span tracer: causally-linked operation trees over simulated time.

A :class:`Span` is one timed operation (a GRM schedule pass, a Trader
query, one ORB invocation); spans nest through a current-span stack, so
synchronous call chains become parent/child edges without any explicit
threading of context.  Deferred work (the GRM's schedule pass runs from
the event loop, not inside the submit call) links back explicitly: the
producer captures :meth:`Tracer.context` and the consumer passes it as
``parent=``.  The ORB carries the same ``(trace_id, span_id)`` pair
across invocations in an optional request-header extension, so one ASCT
submission yields a single trace through LRM, Trader, GRM, and
reservation hops.

Timestamps are **simulated time** (the tracer holds the experiment's
clock); span identity comes from plain counters.  Tracing therefore
draws no randomness and schedules no events — it can never perturb a
deterministic run.  Tracing is opt-in: components guard on
``tracer is not None and tracer.active`` so the disabled path costs one
attribute check and allocates nothing.

The tracer is single-threaded by design (the simulator is); BSP worker
threads report through the metrics registry instead.
"""

import itertools
from typing import Optional


class Span:
    """One finished (or in-flight) timed operation."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start", "end", "attrs")

    def __init__(self, trace_id, span_id, parent_id, name, start, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    def __repr__(self):
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, parent={self.parent_id}, "
                f"[{self.start}, {self.end}])")


class _SpanContext:
    """Context manager closing one span; returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span, exc_type, exc)
        return False


class _NullContext:
    """Shared no-op context for a disabled tracer: zero allocation."""

    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullContext()


class Tracer:
    """Records spans against a clock; bounded, toggleable, exportable."""

    def __init__(self, clock=None, max_spans: int = 1_000_000):
        self._clock = clock
        self._max_spans = max_spans
        self._stack: list[Span] = []
        self.finished: list[Span] = []
        self.dropped = 0
        self._trace_ids = itertools.count()
        self._span_ids = itertools.count(1)
        self._active = True

    # -- switching -----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def enable(self) -> None:
        self._active = True

    def disable(self) -> None:
        """Stop recording; open spans still close, new ones are no-ops."""
        self._active = False

    def clear(self) -> None:
        self.finished.clear()
        self.dropped = 0

    # -- span lifecycle ------------------------------------------------------

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def span(self, name: str, parent: Optional[tuple] = None, **attrs):
        """Open a span; use as ``with tracer.span("grm.schedule"): ...``.

        ``parent`` overrides the implicit current-span parent: a
        ``(trace_id, span_id)`` pair from :meth:`context` or from the
        wire.  Without it, the span nests under the current span, or
        roots a new trace when none is open.
        """
        if not self._active:
            return NULL_SPAN
        if parent is not None:
            trace_id, parent_id = parent
        elif self._stack:
            top = self._stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            trace_id, parent_id = f"t{next(self._trace_ids)}", None
        span = Span(trace_id, next(self._span_ids), parent_id, name,
                    self._now(), attrs)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span, exc_type, exc) -> None:
        span.end = self._now()
        if exc_type is not None:
            span.attrs["error"] = exc_type.__name__
            if exc is not None and str(exc):
                span.attrs["error_message"] = str(exc)
        # Exits run LIFO, but be robust to a leaked inner span.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        if len(self.finished) < self._max_spans:
            self.finished.append(span)
        else:
            self.dropped += 1

    # -- observability of the observer ---------------------------------------

    def to_metrics(self, registry) -> None:
        """Publish span accounting as registry views.

        ``obs.trace.dropped_spans`` is the count silently lost at the
        ``max_spans`` cap — nonzero means exported traces are missing
        their tail and the cap (or the run length) needs adjusting.
        """
        registry.view("obs.trace.dropped_spans", lambda: self.dropped)
        registry.view("obs.trace.finished_spans", lambda: len(self.finished))

    # -- context propagation -------------------------------------------------

    def context(self) -> Optional[tuple]:
        """The current ``(trace_id, span_id)``, or None outside any span.

        This is what crosses boundaries: the ORB writes it into the
        request-header extension, and the GRM stores it per job so the
        deferred schedule pass can parent back to the submission.
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return (top.trace_id, top.span_id)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- queries -------------------------------------------------------------

    def trace(self, trace_id: str) -> list:
        """All finished spans of one trace, in start (then id) order."""
        spans = [s for s in self.finished if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start, s.span_id))
        return spans

    def __len__(self) -> int:
        return len(self.finished)
