"""Grid-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the one place every component's accounting meets.  Two
usage styles coexist:

* **Push** — a component asks the registry for a :class:`Counter`,
  :class:`Gauge`, or :class:`Histogram` once at wiring time and bumps it
  on its own hot path (plain attribute arithmetic, no name lookup and no
  string formatting per event).
* **Pull (views)** — a component that already keeps its own cheap
  integer counters (``GrmStats``, ``Lrm``'s ints, ``Orb.stats()``)
  registers a *view*: a zero-argument callable the registry evaluates
  only at :meth:`MetricsRegistry.snapshot` time.  The component's hot
  path stays exactly as it was.

Snapshots are timestamped in **simulated time** when the registry is
built with the :class:`~repro.sim.clock.SimClock` driving the
experiment, so metric dumps line up with traces and event logs.

Nothing in this module touches the event loop, RNG streams, or wire
format: enabling metrics can never perturb a deterministic run.
"""

import math
from bisect import bisect_right
from typing import Callable, Optional, Sequence

#: Default histogram bounds for wall-clock latencies, in seconds
#: (1 µs .. 10 s, roughly ×3 per step).  Observations above the last
#: bound land in the overflow bucket.
LATENCY_BOUNDS_S = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

#: Default bounds for simulated-time durations, in seconds
#: (1 s .. 1 day).
SIM_SECONDS_BOUNDS = (
    1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 4 * 3600.0, 86400.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, live nodes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max/stddev.

    ``bounds`` are upper bucket edges; an observation lands in the first
    bucket whose edge is >= the value, or the overflow bucket past the
    last edge.  Percentiles are *estimates* (linear interpolation inside
    the winning bucket, clamped to the observed min/max); count, sum,
    mean, min, max, and stddev are exact.

    ``observe`` is a few list/attribute operations — cheap enough to
    leave on permanently.  Updates are GIL-protected; under heavy
    multi-thread use (the BSP barrier) a lost increment is tolerated
    rather than paying for a lock on every observation.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "sumsq",
                 "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS_S):
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                "bounds must be a non-empty strictly increasing sequence"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- statistics ----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 when empty)."""
        if not self.count:
            return 0.0
        variance = self.sumsq / self.count - self.mean ** 2
        return math.sqrt(max(0.0, variance))

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]) from the buckets."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        target = (q / 100.0) * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                low = self.bounds[i - 1] if i > 0 else self.min
                high = self.bounds[i] if i < len(self.bounds) else self.max
                within = (target - (cumulative - bucket_count)) / bucket_count
                estimate = low + (high - low) * within
                return min(self.max, max(self.min, estimate))
        return self.max

    def snapshot(self) -> dict:
        """Summary dict with the same keys as ``analysis.metrics.describe``."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "stddev": self.stddev,
            "sum": self.total,
            "buckets": {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
            },
        }


class MetricsRegistry:
    """Named metrics plus pull-views, snapshotted in simulated time.

    ``clock`` is anything with a ``now`` attribute (normally the
    experiment's :class:`~repro.sim.clock.SimClock`); without one,
    snapshots carry ``time: 0.0``.
    """

    def __init__(self, clock=None):
        self._clock = clock
        self._metrics: dict[str, object] = {}
        self._views: dict[str, Callable[[], object]] = {}

    # -- creation (get-or-create, so wiring is idempotent) -------------------

    def _named(self, name: str, factory, kind):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        if name in self._views:
            raise ValueError(f"{name!r} is already registered as a view")
        metric = factory(name)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._named(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._named(name, Gauge, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS_S
    ) -> Histogram:
        return self._named(name, lambda n: Histogram(n, bounds), Histogram)

    def view(self, name: str, fn: Callable[[], object]) -> None:
        """Register (or replace) a pull-view evaluated at snapshot time."""
        if name in self._metrics:
            raise ValueError(f"{name!r} is already a registered metric")
        self._views[name] = fn

    def bind(self, prefix: str, obj, fields: Sequence[str]) -> None:
        """Publish existing attributes of ``obj`` as views, one per field."""
        for field in fields:
            self.view(f"{prefix}.{field}",
                      lambda o=obj, f=field: getattr(o, f))

    # -- access --------------------------------------------------------------

    def get(self, name: str):
        """The metric object (or view callable) registered under a name."""
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        return self._views.get(name)

    def names(self) -> list:
        return sorted(set(self._metrics) | set(self._views))

    def snapshot(self) -> dict:
        """All metric values as one plain dict, stamped with sim time.

        Counters and gauges flatten to numbers, histograms to their
        summary dicts, views to whatever their callable returns.
        """
        out: dict = {
            "time": self._clock.now if self._clock is not None else 0.0,
        }
        metrics: dict = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                metrics[name] = metric.snapshot()
            else:
                metrics[name] = metric.value
        for name, fn in self._views.items():
            metrics[name] = fn()
        out["metrics"] = dict(sorted(metrics.items()))
        return out
