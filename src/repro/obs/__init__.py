"""Observability: metrics, span tracer, event journal, health plane.

The always-on layer is the :class:`MetricsRegistry` — counters, gauges,
and fixed-bucket histograms stamped in simulated time, plus pull-views
over the components' existing cheap counters.  The opt-in layer is the
:class:`Tracer`, whose spans follow one submission across LRM, Trader,
GRM, and reservation hops via ORB-propagated trace context, and export
to JSONL or Chrome ``trace_event`` JSON.  The diagnosis layer is the
:class:`EventJournal` — typed, causally-linked lifecycle events — with
:func:`failure_chains` forensics, declarative :class:`AlertRule`
evaluation, and the :func:`doctor_report` postmortem behind
``cli doctor``.

No layer draws randomness, schedules events, or changes the wire
format when idle, so observability never perturbs a deterministic run.
"""

from repro.obs.exporters import (
    TraceFormatError,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    export_metrics_json,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.obs.health import (
    AlertEvaluator,
    AlertFiring,
    AlertRule,
    FailureChain,
    TaskRecovery,
    default_rules,
    doctor_report,
    failure_chains,
    flatten_metrics,
    grid_health_report,
    render_health_report,
)
from repro.obs.journal import (
    EVENT_TYPES,
    EventJournal,
    JournalEvent,
    JournalFormatError,
    export_journal_jsonl,
    load_journal_jsonl,
    validate_journal,
    validate_journal_file,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDS_S,
    MetricsRegistry,
    SIM_SECONDS_BOUNDS,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "AlertEvaluator",
    "AlertFiring",
    "AlertRule",
    "Counter",
    "EVENT_TYPES",
    "EventJournal",
    "FailureChain",
    "Gauge",
    "Histogram",
    "JournalEvent",
    "JournalFormatError",
    "LATENCY_BOUNDS_S",
    "MetricsRegistry",
    "NULL_SPAN",
    "SIM_SECONDS_BOUNDS",
    "Span",
    "TaskRecovery",
    "Tracer",
    "TraceFormatError",
    "chrome_trace_events",
    "default_rules",
    "doctor_report",
    "export_chrome_trace",
    "export_journal_jsonl",
    "export_jsonl",
    "export_metrics_json",
    "failure_chains",
    "flatten_metrics",
    "grid_health_report",
    "load_journal_jsonl",
    "render_health_report",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_journal",
    "validate_journal_file",
]
