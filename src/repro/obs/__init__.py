"""Observability: metrics registry, span tracer, and exporters.

The always-on layer is the :class:`MetricsRegistry` — counters, gauges,
and fixed-bucket histograms stamped in simulated time, plus pull-views
over the components' existing cheap counters.  The opt-in layer is the
:class:`Tracer`, whose spans follow one submission across LRM, Trader,
GRM, and reservation hops via ORB-propagated trace context, and export
to JSONL or Chrome ``trace_event`` JSON.

Neither layer draws randomness, schedules events, or changes the wire
format when idle, so observability never perturbs a deterministic run.
"""

from repro.obs.exporters import (
    TraceFormatError,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    export_metrics_json,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDS_S,
    MetricsRegistry,
    SIM_SECONDS_BOUNDS,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS_S",
    "MetricsRegistry",
    "NULL_SPAN",
    "SIM_SECONDS_BOUNDS",
    "Span",
    "Tracer",
    "TraceFormatError",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics_json",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]
