"""Grid health plane: causal failure forensics and declarative alerts.

Two consumers sit on top of the :mod:`repro.obs.journal`:

* **Forensics** — :func:`failure_chains` rebuilds, from the journal
  alone, the causal chain each node death set off: the ``node_down``
  event, every ``task_evicted`` it caused, what each evicted task's
  recovery looked like (restored from a checkpoint vs restarted from
  zero vs never recovered), and the sim-time cost attributed to the
  crash (per-task stall off the CPU plus the checkpointed work lost).

* **Alerts** — :class:`AlertEvaluator` runs declarative
  threshold/absence/rate rules over a metrics mapping (a live
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` or a JSON file
  written by ``simulate --metrics-json``).  Rules are plain data
  (:class:`AlertRule`), so rule sets ship as dicts/JSON.

:func:`grid_health_report` combines both against a live grid;
:func:`doctor_report` does the same offline from an exported journal
(plus an optional metrics snapshot) — that is what ``cli doctor``
renders as a postmortem.
"""

import operator
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.obs.journal import JournalEvent

# -- forensics ----------------------------------------------------------------


@dataclass
class TaskRecovery:
    """What happened to one task evicted by a crash."""

    task_id: str
    job_id: Optional[str]
    evicted_at: float
    evicted_seq: int
    outcome: str                      # restored | restarted | unrecovered
    resume_progress_mips: float = 0.0
    lost_progress_mips: float = 0.0
    rescheduled_at: Optional[float] = None
    rescheduled_node: Optional[str] = None
    completed_at: Optional[float] = None

    @property
    def stall_s(self) -> float:
        """Sim seconds the task sat off the CPU because of the crash."""
        if self.rescheduled_at is None:
            return 0.0
        return max(0.0, self.rescheduled_at - self.evicted_at)

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "job_id": self.job_id,
            "evicted_at": self.evicted_at,
            "outcome": self.outcome,
            "resume_progress_mips": self.resume_progress_mips,
            "lost_progress_mips": self.lost_progress_mips,
            "rescheduled_at": self.rescheduled_at,
            "rescheduled_node": self.rescheduled_node,
            "completed_at": self.completed_at,
            "stall_s": self.stall_s,
        }


@dataclass
class FailureChain:
    """One node death and everything the journal says it caused."""

    node: str
    down_seq: int
    down_at: float
    reason: str = ""
    #: Sim seconds between the node's last accepted status update and
    #: the death being declared: the liveness window the tasks silently
    #: sat dead through before anyone acted.
    detection_s: float = 0.0
    tasks: list = field(default_factory=list)       # [TaskRecovery]
    checkpoints_restored: int = 0

    @property
    def cost_s(self) -> float:
        """Total sim-time delay attributed to this crash.

        Each evicted task pays the detection window (it was dead on the
        node but not yet requeued) plus its own requeue stall; parallel
        stalls each cost their own idle time, so they sum."""
        return sum(self.detection_s + t.stall_s for t in self.tasks)

    @property
    def jobs_affected(self) -> list:
        return sorted({t.job_id for t in self.tasks if t.job_id})

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "down_at": self.down_at,
            "reason": self.reason,
            "detection_s": self.detection_s,
            "tasks": [t.to_dict() for t in self.tasks],
            "jobs_affected": self.jobs_affected,
            "checkpoints_restored": self.checkpoints_restored,
            "cost_s": self.cost_s,
        }


def _as_dicts(events: Iterable) -> list:
    return [
        e.to_dict() if isinstance(e, JournalEvent) else e for e in events
    ]


def failure_chains(events: Iterable) -> list:
    """Reconstruct every node-death causal chain from journal events.

    Works on :class:`JournalEvent` objects or plain dicts (a loaded
    JSONL export).  Evictions join a chain through their ``cause`` link
    to the ``node_down`` event; recovery outcomes come from the next
    ``task_scheduled``/``task_restored`` event of the same task.
    """
    events = _as_dicts(events)
    by_task: dict[str, list] = {}
    for event in events:
        task_id = event.get("task_id")
        if task_id is not None:
            by_task.setdefault(task_id, []).append(event)

    chains = []
    for down in events:
        if down["type"] != "node_down":
            continue
        down_attrs = down.get("attrs", {})
        last_seen = down_attrs.get("last_seen")
        chain = FailureChain(
            node=down.get("node") or "?",
            down_seq=down["seq"],
            down_at=down["time"],
            reason=down_attrs.get("reason", ""),
            detection_s=max(0.0, down["time"] - last_seen)
            if last_seen is not None else 0.0,
        )
        chain.checkpoints_restored = sum(
            1 for e in events
            if e["type"] == "checkpoint_restored"
            and e.get("cause") == down["seq"]
        )
        for evicted in events:
            if evicted["type"] != "task_evicted" \
                    or evicted.get("cause") != down["seq"]:
                continue
            task_id = evicted.get("task_id") or "?"
            attrs = evicted.get("attrs", {})
            later = [
                e for e in by_task.get(task_id, ())
                if e["seq"] > evicted["seq"]
            ]
            resched = next(
                (e for e in later if e["type"] == "task_scheduled"), None
            )
            restored = next(
                (e for e in later if e["type"] == "task_restored"), None
            )
            completed = next(
                (e for e in later if e["type"] == "task_completed"), None
            )
            if resched is None:
                outcome = "unrecovered"
            elif restored is not None or resched.get("attrs", {}).get(
                    "initial_progress_mips", 0.0) > 0.0:
                outcome = "restored"
            else:
                outcome = "restarted"
            chain.tasks.append(TaskRecovery(
                task_id=task_id,
                job_id=evicted.get("job_id"),
                evicted_at=evicted["time"],
                evicted_seq=evicted["seq"],
                outcome=outcome,
                resume_progress_mips=attrs.get("resume_progress_mips", 0.0),
                lost_progress_mips=max(
                    0.0,
                    attrs.get("progress_mips", 0.0)
                    - attrs.get("resume_progress_mips", 0.0),
                ),
                rescheduled_at=resched["time"] if resched else None,
                rescheduled_node=resched.get("node") if resched else None,
                completed_at=completed["time"] if completed else None,
            ))
        chains.append(chain)
    return chains


# -- alert rules --------------------------------------------------------------

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule over a metrics mapping.

    ``kind`` is one of:

    * ``threshold`` — fire when ``metric`` exists and
      ``value_of(metric) <op> value``;
    * ``absence`` — fire when ``metric`` is missing from the snapshot
      (a component that should be reporting is not);
    * ``rate`` — fire when the metric's per-second rate of change
      between two successive ``evaluate`` calls satisfies ``op value``.

    ``metric`` may use dotted drill-down into structured values:
    ``grm.c0.rank_latency_s.p95`` reads the histogram snapshot's p95.
    """

    name: str
    kind: str
    metric: str
    op: str = ">="
    value: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("threshold", "absence", "rate"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}")

    @classmethod
    def from_dict(cls, data: Mapping) -> "AlertRule":
        return cls(**dict(data))


@dataclass
class AlertFiring:
    """One rule firing at one evaluation time."""

    rule: str
    severity: str
    metric: str
    observed: Optional[float]
    op: str
    value: float
    time: float
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "metric": self.metric,
            "observed": self.observed,
            "op": self.op,
            "value": self.value,
            "time": self.time,
            "description": self.description,
        }


def flatten_metrics(metrics: Mapping) -> dict:
    """Numeric leaves of a metrics mapping, dict values dotted in.

    Histogram snapshots contribute ``name.count`` / ``name.p95`` / ...;
    the nested ``buckets`` structure and non-numeric leaves are skipped.
    """
    flat: dict = {}

    def visit(prefix, value):
        if isinstance(value, bool):
            flat[prefix] = float(value)
        elif isinstance(value, (int, float)):
            flat[prefix] = value
        elif isinstance(value, Mapping):
            for key, sub in value.items():
                visit(f"{prefix}.{key}" if prefix else str(key), sub)

    for name, value in metrics.items():
        visit(str(name), value)
    return flat


class AlertEvaluator:
    """Evaluates a rule set against successive metric snapshots.

    Stateless per call except for ``rate`` rules (which need the
    previous sample) and the cumulative per-rule firing counts backing
    :meth:`top`.
    """

    def __init__(self, rules: Iterable):
        self.rules = [
            r if isinstance(r, AlertRule) else AlertRule.from_dict(r)
            for r in rules
        ]
        self.firings: list[AlertFiring] = []
        self._fire_counts: dict[str, int] = {}
        self._last_sample: dict[str, tuple] = {}   # rule -> (time, value)

    def evaluate(self, metrics: Mapping, time: float = 0.0) -> list:
        """Run every rule; returns (and remembers) this pass's firings."""
        flat = flatten_metrics(metrics)
        fired = []
        for rule in self.rules:
            observed = flat.get(rule.metric)
            if rule.kind == "absence":
                if observed is None:
                    fired.append(self._fire(rule, None, time))
                continue
            if rule.kind == "threshold":
                if observed is not None and \
                        _OPS[rule.op](observed, rule.value):
                    fired.append(self._fire(rule, observed, time))
                continue
            # rate: needs a previous sample with elapsed time
            previous = self._last_sample.get(rule.name)
            if observed is not None:
                self._last_sample[rule.name] = (time, observed)
            if previous is None or observed is None:
                continue
            prev_time, prev_value = previous
            if time <= prev_time:
                continue
            rate = (observed - prev_value) / (time - prev_time)
            if _OPS[rule.op](rate, rule.value):
                fired.append(self._fire(rule, rate, time))
        self.firings.extend(fired)
        return fired

    def _fire(self, rule: AlertRule, observed, time: float) -> AlertFiring:
        self._fire_counts[rule.name] = self._fire_counts.get(rule.name, 0) + 1
        return AlertFiring(
            rule=rule.name, severity=rule.severity, metric=rule.metric,
            observed=observed, op=rule.op, value=rule.value, time=time,
            description=rule.description,
        )

    def top(self, n: int = 5) -> list:
        """(rule name, firing count) pairs, most-fired first."""
        ranked = sorted(
            self._fire_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:n]


def default_rules(
    clusters: Iterable = (),
    bsp_jobs: Iterable = (),
    update_interval: float = 60.0,
) -> list:
    """The stock rule set ``grid_health_report`` evaluates.

    Parameterised on the grid's shape: one dead-node and one
    status-staleness rule per cluster, one checkpoint-lag (straggler)
    rule per BSP job, plus grid-wide journal/tracer loss detectors.
    """
    rules = []
    for cluster in clusters:
        rules.append(AlertRule(
            name=f"dead-nodes.{cluster}", kind="threshold",
            metric=f"grm.{cluster}.nodes_declared_dead",
            op=">=", value=1, severity="critical",
            description="nodes declared dead by the liveness sweep",
        ))
        rules.append(AlertRule(
            name=f"status-staleness.{cluster}", kind="threshold",
            metric=f"monitor.{cluster}.status_age_mean_s",
            op=">", value=3.0 * update_interval, severity="warning",
            description="GRM's node-status view is going stale",
        ))
        rules.append(AlertRule(
            name=f"pending-jobs.{cluster}", kind="threshold",
            metric=f"grm.{cluster}.pending_jobs",
            op=">=", value=1, severity="info",
            description="jobs waiting for resources",
        ))
    for job_id in bsp_jobs:
        rules.append(AlertRule(
            name=f"checkpoint-lag.{job_id}", kind="threshold",
            metric=f"bsp.{job_id}.stragglers",
            op=">=", value=1, severity="warning",
            description="members holding the consistent checkpoint "
                        "cut back (RecoveryManager.stragglers)",
        ))
    rules.append(AlertRule(
        name="journal-loss", kind="threshold",
        metric="obs.journal.dropped", op=">=", value=1,
        severity="warning",
        description="journal hit its bound; forensics tail is missing",
    ))
    rules.append(AlertRule(
        name="trace-loss", kind="threshold",
        metric="obs.trace.dropped_spans", op=">=", value=1,
        severity="warning",
        description="tracer hit max_spans; spans were dropped",
    ))
    return rules


# -- reports ------------------------------------------------------------------


def doctor_report(
    events: Iterable,
    metrics: Optional[Mapping] = None,
    rules: Optional[Iterable] = None,
    time: Optional[float] = None,
    top: int = 5,
) -> dict:
    """Postmortem assembled from journal events alone (plus optional
    metrics for alert evaluation).  This is the offline path behind
    ``cli doctor``: no live grid required.
    """
    events = _as_dicts(events)
    chains = failure_chains(events)
    if time is None:
        time = events[-1]["time"] if events else 0.0
    # Wide-area forensics: a cluster is dead if its last lifecycle event
    # at any parent was cluster_down (a later cluster_up revives it).
    cluster_state: dict = {}
    for event in events:
        if event["type"] in ("cluster_up", "cluster_down"):
            cluster = event["attrs"].get("cluster")
            if cluster is not None:
                cluster_state[cluster] = event
    dead_clusters = [
        {
            "cluster": cluster,
            "parent": event["attrs"].get("parent"),
            "down_at": event["time"],
            "reason": event["attrs"].get("reason"),
            "last_seen": event["attrs"].get("last_seen"),
        }
        for cluster, event in sorted(cluster_state.items())
        if event["type"] == "cluster_down"
    ]
    report = {
        "time": time,
        "events": len(events),
        "dead_nodes": [c.node for c in chains],
        "dead_clusters": dead_clusters,
        "chains": [c.to_dict() for c in chains],
        "jobs_affected": sorted({
            job for c in chains for job in c.jobs_affected
        }),
        "alerts": [],
        "top_alerts": [],
    }
    if metrics is not None:
        evaluator = AlertEvaluator(
            rules if rules is not None else default_rules()
        )
        fired = evaluator.evaluate(metrics, time=time)
        report["alerts"] = [f.to_dict() for f in fired]
        report["top_alerts"] = evaluator.top(top)
    return report


def grid_health_report(
    grid,
    rules: Optional[Iterable] = None,
    top: int = 5,
) -> dict:
    """Live health report for a grid with the journal enabled.

    Uses the journal for forensics and the metrics registry (enabled on
    first use, like :meth:`Grid.metrics_snapshot`) for alert rules; the
    stock rule set is shaped to the grid's clusters and BSP jobs.
    """
    journal = getattr(grid, "journal", None)
    if journal is None:
        raise ValueError(
            "grid has no journal; call grid.enable_journal() first"
        )
    snapshot = grid.metrics_snapshot()
    if rules is None:
        rules = default_rules(
            clusters=sorted(grid.clusters),
            bsp_jobs=sorted(grid._coordinators),
            update_interval=grid.update_interval,
        )
    report = doctor_report(
        journal.events, metrics=snapshot["metrics"], rules=rules,
        time=snapshot["time"], top=top,
    )
    report["journal"] = {
        "recorded": journal.recorded,
        "dropped": journal.dropped,
        "size": len(journal),
    }
    return report


def render_health_report(report: Mapping) -> str:
    """Human-readable postmortem: dead nodes, recovery, top alerts."""
    lines = [f"Grid health report at t={report.get('time', 0.0):.0f}s "
             f"({report.get('events', 0)} journal events)"]
    chains = report.get("chains", ())
    if not chains:
        lines.append("  no node deaths recorded")
    for chain in chains:
        lines.append(
            f"  node {chain['node']} DOWN at t={chain['down_at']:.0f}s"
            + (f" ({chain['reason']})" if chain.get("reason") else "")
            + (f", detected after {chain['detection_s']:.0f}s"
               if chain.get("detection_s") else "")
            + f": {len(chain['tasks'])} task(s) evicted, "
            f"{chain['checkpoints_restored']} checkpoint(s) restored, "
            f"cost {chain['cost_s']:.0f}s"
        )
        for task in chain["tasks"]:
            completed = task.get("completed_at")
            lines.append(
                f"    {task['task_id']} ({task.get('job_id')}): "
                f"{task['outcome']}"
                + (f" at +{task['stall_s']:.0f}s"
                   if task.get("rescheduled_at") is not None else "")
                + (f", lost {task['lost_progress_mips']:.0f} MIPS"
                   if task.get("lost_progress_mips") else "")
                + (f", completed t={completed:.0f}s"
                   if completed is not None else ", not completed")
            )
    for dead in report.get("dead_clusters", ()):
        lines.append(
            f"  cluster {dead['cluster']} DOWN at t={dead['down_at']:.0f}s"
            + (f" at parent {dead['parent']}" if dead.get("parent") else "")
            + (f" ({dead['reason']})" if dead.get("reason") else "")
        )
    jobs = report.get("jobs_affected", ())
    if jobs:
        lines.append(f"  jobs affected: {', '.join(jobs)}")
    alerts = report.get("alerts", ())
    if alerts:
        lines.append(f"  alerts firing ({len(alerts)}):")
        for alert in alerts:
            observed = alert.get("observed")
            shown = f"{observed:.4g}" if observed is not None else "absent"
            lines.append(
                f"    [{alert['severity']}] {alert['rule']}: "
                f"{alert['metric']} = {shown} "
                f"(rule: {alert['op']} {alert['value']:g})"
            )
    else:
        lines.append("  no alerts firing")
    topn = report.get("top_alerts", ())
    if topn:
        lines.append("  top alert firings: " + ", ".join(
            f"{name} x{count}" for name, count in topn
        ))
    return "\n".join(lines)
