"""Trace and metrics exporters.

Two span formats:

* **JSONL** — one span per line, the raw model (trace/span/parent ids,
  sim-time start/end, attrs).  Greppable, diffable, streamable.
* **Chrome ``trace_event``** — the JSON object format understood by
  ``chrome://tracing`` and Perfetto: complete (``"ph": "X"``) events
  with microsecond timestamps.  Simulated seconds are mapped to
  microseconds, so one sim-second reads as 1 µs-unit on the timeline;
  the span's exact sim interval is also kept in ``args``.

:func:`validate_chrome_trace` is the schema check CI runs against the
CLI's exported trace; it raises :class:`TraceFormatError` with the
first offending event.
"""

import json
from typing import IO, Iterable, Union

PathOrFile = Union[str, IO]


class TraceFormatError(ValueError):
    """An exported trace does not conform to the trace_event schema."""


def _open_for_write(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w"), True
    return target, False


def export_jsonl(spans: Iterable, target: PathOrFile) -> int:
    """Write spans one-JSON-object-per-line; returns the span count."""
    f, owned = _open_for_write(target)
    try:
        count = 0
        for span in spans:
            f.write(json.dumps(span.to_dict(), sort_keys=True))
            f.write("\n")
            count += 1
        return count
    finally:
        if owned:
            f.close()


def chrome_trace_events(spans: Iterable) -> list:
    """Spans as a list of Chrome ``trace_event`` complete events.

    ``pid`` groups by trace, ``tid`` by component (the ``component``
    span attribute, falling back to the span name's first dotted part),
    which renders each trace as a process with one row per component.
    """
    events = []
    pids: dict[str, int] = {}
    tids: dict[tuple, int] = {}
    for span in spans:
        pid = pids.setdefault(span.trace_id, len(pids) + 1)
        component = span.attrs.get("component") or span.name.split(".")[0]
        tid = tids.setdefault((span.trace_id, component), len(tids) + 1)
        end = span.end if span.end is not None else span.start
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "sim_start_s": span.start,
            "sim_end_s": end,
        }
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": component,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def export_chrome_trace(spans: Iterable, target: PathOrFile) -> int:
    """Write the Chrome JSON object format; returns the event count."""
    events = chrome_trace_events(spans)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 sim second = 1e6 ts units"},
    }
    f, owned = _open_for_write(target)
    try:
        json.dump(payload, f)
    finally:
        if owned:
            f.close()
    return len(events)


_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(obj) -> int:
    """Check an already-parsed trace object; returns the event count.

    Accepts the JSON object format (``{"traceEvents": [...]}``) or the
    bare JSON array format — the two layouts the Trace Event spec
    defines.  Raises :class:`TraceFormatError` on the first violation.
    """
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise TraceFormatError(
                "object format requires a 'traceEvents' list"
            )
    elif isinstance(obj, list):
        events = obj
    else:
        raise TraceFormatError(
            f"trace must be a JSON object or array, got {type(obj).__name__}"
        )
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceFormatError(f"event {i} is not an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise TraceFormatError(f"event {i} is missing {key!r}")
        if not isinstance(event["name"], str):
            raise TraceFormatError(f"event {i}: 'name' must be a string")
        if not isinstance(event["ph"], str) or not event["ph"]:
            raise TraceFormatError(f"event {i}: 'ph' must be a phase string")
        if not isinstance(event["ts"], (int, float)):
            raise TraceFormatError(f"event {i}: 'ts' must be a number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceFormatError(
                    f"event {i}: complete events need a non-negative 'dur'"
                )
    return len(events)


def validate_chrome_trace_file(path: str) -> int:
    """Parse and validate a trace file; returns the event count."""
    with open(path) as f:
        try:
            obj = json.load(f)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"not valid JSON: {exc}") from exc
    return validate_chrome_trace(obj)


def export_metrics_json(registry, target: PathOrFile) -> dict:
    """Write a registry snapshot as JSON; returns the snapshot."""
    snapshot = registry.snapshot()
    f, owned = _open_for_write(target)
    try:
        json.dump(snapshot, f, indent=2, sort_keys=True, default=str)
    finally:
        if owned:
            f.close()
    return snapshot
