"""Trading service — the CORBA Trader equivalent.

The GRM "uses the JacORB Trader to store the information it receives from
the LRMs" (paper, Section 5).  An offer is a service type, a reference,
and a property list; queries filter offers with a constraint expression
and rank them with a preference expression, both in the language of
:mod:`repro.apps.constraints` (standing in for the OMG trader constraint
language).
"""

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.apps.constraints import Constraint, Preference
from repro.orb.cdr import (
    Long,
    Sequence,
    String,
    Struct,
    VARIANT,
    Void,
)
from repro.orb.idl import InterfaceDef, Operation, Parameter

OFFER_STRUCT = Struct(
    "Offer",
    [
        ("offer_id", String),
        ("service_type", String),
        ("ior", String),
        ("properties", VARIANT),
    ],
)

TRADING_INTERFACE = InterfaceDef(
    "integrade/Trading",
    [
        Operation(
            "export",
            (
                Parameter("service_type", String),
                Parameter("ior", String),
                Parameter("properties", VARIANT),
            ),
            String,
        ),
        Operation(
            "modify",
            (Parameter("offer_id", String), Parameter("properties", VARIANT)),
            Void,
        ),
        Operation("withdraw", (Parameter("offer_id", String),), Void),
        Operation(
            "query",
            (
                Parameter("service_type", String),
                Parameter("constraint", String),
                Parameter("preference", String),
                Parameter("max_offers", Long),
            ),
            Sequence(OFFER_STRUCT),
        ),
    ],
)


class UnknownOffer(Exception):
    """The offer id does not exist (already withdrawn?)."""


@dataclass
class Offer:
    """One service offer held by the trader."""

    offer_id: str
    service_type: str
    ior: str
    properties: dict

    def as_dict(self) -> dict:
        return {
            "offer_id": self.offer_id,
            "service_type": self.service_type,
            "ior": self.ior,
            "properties": dict(self.properties),
        }


class TradingService:
    """An in-memory trader with constraint queries and preference ranking."""

    def __init__(self):
        self._offers: dict[str, Offer] = {}
        self._ids = itertools.count()

    def export(self, service_type: str, ior: str, properties: Mapping[str, Any]) -> str:
        """Register an offer; returns its id."""
        if not service_type:
            raise ValueError("service_type must be non-empty")
        offer_id = f"offer{next(self._ids)}"
        self._offers[offer_id] = Offer(
            offer_id, service_type, ior, dict(properties)
        )
        return offer_id

    def modify(self, offer_id: str, properties: Mapping[str, Any]) -> None:
        """Replace an offer's property list (the LRM's periodic update)."""
        offer = self._offers.get(offer_id)
        if offer is None:
            raise UnknownOffer(offer_id)
        offer.properties = dict(properties)

    def withdraw(self, offer_id: str) -> None:
        """Remove an offer."""
        if offer_id not in self._offers:
            raise UnknownOffer(offer_id)
        del self._offers[offer_id]

    def query(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
        max_offers: int = -1,
    ) -> list:
        """Matching offers as dicts, best-ranked first.

        ``max_offers`` < 0 means unlimited.  Ties keep export order so
        results are deterministic.
        """
        matcher = Constraint(constraint)
        candidates = [
            offer
            for offer in self._offers.values()
            if offer.service_type == service_type
            and matcher.matches(offer.properties)
        ]
        if preference.strip():
            rank = Preference(preference)
            candidates.sort(
                key=lambda o: rank.score(o.properties), reverse=True
            )
        if max_offers >= 0:
            candidates = candidates[:max_offers]
        return [offer.as_dict() for offer in candidates]

    @property
    def offer_count(self) -> int:
        return len(self._offers)

    def offer(self, offer_id: str) -> Offer:
        """Direct lookup, mostly for tests and monitoring."""
        try:
            return self._offers[offer_id]
        except KeyError:
            raise UnknownOffer(offer_id) from None
