"""Trading service — the CORBA Trader equivalent.

The GRM "uses the JacORB Trader to store the information it receives from
the LRMs" (paper, Section 5).  An offer is a service type, a reference,
and a property list; queries filter offers with a constraint expression
and rank them with a preference expression, both in the language of
:mod:`repro.apps.constraints` (standing in for the OMG trader constraint
language).
"""

import heapq
import itertools
import operator
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Mapping, Optional

from repro.apps.constraints import (
    Constraint,
    Preference,
    compiled_match_without,
)
from repro.orb.cdr import (
    Long,
    Sequence,
    String,
    Struct,
    VARIANT,
    Void,
)
from repro.orb.idl import InterfaceDef, Operation, Parameter

OFFER_STRUCT = Struct(
    "Offer",
    [
        ("offer_id", String),
        ("service_type", String),
        ("ior", String),
        ("properties", VARIANT),
    ],
)

TRADING_INTERFACE = InterfaceDef(
    "integrade/Trading",
    [
        Operation(
            "export",
            (
                Parameter("service_type", String),
                Parameter("ior", String),
                Parameter("properties", VARIANT),
            ),
            String,
        ),
        Operation(
            "modify",
            (Parameter("offer_id", String), Parameter("properties", VARIANT)),
            Void,
        ),
        Operation("withdraw", (Parameter("offer_id", String),), Void),
        Operation(
            "query",
            (
                Parameter("service_type", String),
                Parameter("constraint", String),
                Parameter("preference", String),
                Parameter("max_offers", Long),
            ),
            Sequence(OFFER_STRUCT),
        ),
    ],
)


class UnknownOffer(Exception):
    """The offer id does not exist (already withdrawn?)."""


_MISSING = object()
_by_seq = operator.attrgetter("seq")


@dataclass
class Offer:
    """One service offer held by the trader."""

    offer_id: str
    service_type: str
    ior: str
    properties: dict
    #: Export sequence number; query ties keep ascending ``seq`` order.
    seq: int = 0

    def as_dict(self, copy_properties: bool = True) -> dict:
        return {
            "offer_id": self.offer_id,
            "service_type": self.service_type,
            "ior": self.ior,
            "properties": (
                dict(self.properties) if copy_properties else self.properties
            ),
        }


class TradingService:
    """An in-memory trader with constraint queries and preference ranking.

    Query evaluation is indexed: offers are partitioned by service type,
    and equality conjuncts of the constraint (``sharing == true``) narrow
    the scan to an incrementally-maintained bucket before the full matcher
    runs.  Buckets are built lazily the first time a query needs an
    attribute, so exports and modifies on never-queried attributes cost
    nothing extra.  :meth:`query_linear` keeps the original unindexed scan
    as a reference oracle for equivalence tests and benchmarks.
    """

    def __init__(self):
        self._offers: dict[str, Offer] = {}
        # service type -> {offer_id: Offer}, in export order.
        self._by_type: dict[str, dict[str, Offer]] = {}
        # service type -> attr -> property value -> {offer_id: Offer}.
        # Offers whose value is missing or unhashable are simply absent:
        # under ClassAd semantics they can never satisfy ``attr == literal``.
        self._indexes: dict[str, dict[str, dict[Any, dict[str, Offer]]]] = {}
        self._ids = itertools.count()
        self._seq = itertools.count()
        #: Accounting: total queries, and how many took the equality-
        #: bucket-indexed path vs the full linear scan.  Plain int bumps.
        self.queries = 0
        self.indexed_queries = 0
        self.linear_queries = 0
        self._query_hist = None   # wall-latency histogram once bound

    def bind_metrics(self, registry, prefix: str = "trader") -> None:
        """Publish counters as registry views; time queries from now on."""
        registry.bind(prefix, self,
                      ("queries", "indexed_queries", "linear_queries",
                       "offer_count"))
        from repro.obs.metrics import LATENCY_BOUNDS_S
        self._query_hist = registry.histogram(
            f"{prefix}.query_latency_s", LATENCY_BOUNDS_S
        )

    # -- index maintenance ----------------------------------------------------

    def _index_insert(self, index: dict, attr: str, offer: Offer) -> None:
        value = offer.properties.get(attr, _MISSING)
        if value is _MISSING:
            return
        try:
            bucket = index.setdefault(value, {})
        except TypeError:       # unhashable value: cannot match a literal
            return
        bucket[offer.offer_id] = offer

    def _index_remove(self, index: dict, attr: str, offer: Offer) -> None:
        value = offer.properties.get(attr, _MISSING)
        if value is _MISSING:
            return
        try:
            bucket = index.get(value)
        except TypeError:
            return
        if bucket is not None:
            bucket.pop(offer.offer_id, None)
            if not bucket:
                del index[value]

    def _index_for(self, service_type: str, attr: str) -> dict:
        """The value->bucket map for one attribute, built on first use."""
        per_type = self._indexes.setdefault(service_type, {})
        index = per_type.get(attr)
        if index is None:
            index = per_type[attr] = {}
            for offer in self._by_type.get(service_type, {}).values():
                self._index_insert(index, attr, offer)
        return index

    # -- offer lifecycle ------------------------------------------------------

    def export(self, service_type: str, ior: str, properties: Mapping[str, Any]) -> str:
        """Register an offer; returns its id."""
        if not service_type:
            raise ValueError("service_type must be non-empty")
        offer_id = f"offer{next(self._ids)}"
        offer = Offer(
            offer_id, service_type, ior, dict(properties), seq=next(self._seq)
        )
        self._offers[offer_id] = offer
        self._by_type.setdefault(service_type, {})[offer_id] = offer
        for attr, index in self._indexes.get(service_type, {}).items():
            self._index_insert(index, attr, offer)
        return offer_id

    def modify(
        self,
        offer_id: str,
        properties: Mapping[str, Any],
        copy: bool = True,
    ) -> None:
        """Replace an offer's property list (the LRM's periodic update).

        ``copy=False`` adopts the mapping without copying — the caller
        must hand over ownership (the GRM does this with freshly-decoded
        update dicts it never touches again).
        """
        offer = self._offers.get(offer_id)
        if offer is None:
            raise UnknownOffer(offer_id)
        indexes = self._indexes.get(offer.service_type)
        if indexes:
            for attr, index in indexes.items():
                self._index_remove(index, attr, offer)
        offer.properties = dict(properties) if copy else properties
        if indexes:
            for attr, index in indexes.items():
                self._index_insert(index, attr, offer)

    def patch(self, offer_id: str, changes: Mapping[str, Any]) -> None:
        """Update a subset of an offer's properties in place.

        Unlike :meth:`modify`, which re-files the offer in *every* built
        index, only indexes over attributes present in ``changes`` are
        touched — a small patch (a delta update's changed fields) costs
        O(len(changes)) no matter how many attributes are indexed.
        Mutates the existing property dict rather than replacing it, so
        aliases obtained with ``copy_properties=False`` observe the new
        values.
        """
        offer = self._offers.get(offer_id)
        if offer is None:
            raise UnknownOffer(offer_id)
        indexes = self._indexes.get(offer.service_type)
        if not indexes:
            offer.properties.update(changes)
            return
        touched = [attr for attr in changes if attr in indexes]
        for attr in touched:
            self._index_remove(indexes[attr], attr, offer)
        offer.properties.update(changes)
        for attr in touched:
            self._index_insert(indexes[attr], attr, offer)

    def modify_many(self, updates, copy: bool = True) -> int:
        """Apply many property replacements in one pass (batched ingest).

        ``updates`` yields ``(offer_id, properties)`` pairs.  Offers that
        vanished since the update was queued (a flush racing a withdraw)
        are skipped rather than raising.  Returns the number applied.
        """
        offers = self._offers
        all_indexes = self._indexes
        applied = 0
        for offer_id, properties in updates:
            offer = offers.get(offer_id)
            if offer is None:
                continue
            indexes = all_indexes.get(offer.service_type)
            if indexes:
                for attr, index in indexes.items():
                    self._index_remove(index, attr, offer)
            offer.properties = dict(properties) if copy else properties
            if indexes:
                for attr, index in indexes.items():
                    self._index_insert(index, attr, offer)
            applied += 1
        return applied

    def withdraw(self, offer_id: str) -> None:
        """Remove an offer."""
        offer = self._offers.pop(offer_id, None)
        if offer is None:
            raise UnknownOffer(offer_id)
        self._by_type[offer.service_type].pop(offer_id, None)
        for attr, index in self._indexes.get(offer.service_type, {}).items():
            self._index_remove(index, attr, offer)

    # -- queries --------------------------------------------------------------

    def query(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
        max_offers: int = -1,
        copy_properties: bool = True,
    ) -> list:
        """Matching offers as dicts, best-ranked first.

        ``max_offers`` < 0 means unlimited; ``max_offers == 0`` is an
        explicit "no offers" request and always returns ``[]`` (callers
        probing whether a match *exists* should pass 1).  Ties keep export
        order so results are deterministic.  ``copy_properties=False``
        returns property dicts aliasing the live offers — read-only use
        only.
        """
        self.queries += 1
        hist = self._query_hist
        if hist is None:
            return self._query(
                service_type, constraint, preference, max_offers,
                copy_properties,
            )
        started = perf_counter()
        try:
            return self._query(
                service_type, constraint, preference, max_offers,
                copy_properties,
            )
        finally:
            hist.observe(perf_counter() - started)

    def _query(
        self,
        service_type: str,
        constraint: str,
        preference: str,
        max_offers: int,
        copy_properties: bool,
    ) -> list:
        if max_offers == 0:
            return []
        pool = self._by_type.get(service_type)
        if not pool:
            return []
        matcher = Constraint(constraint)

        # Narrow to the smallest equality bucket before the full matcher.
        bucket = None
        bucket_conjunct = None
        for attr, literal in matcher.equality_conjuncts:
            index = self._index_for(service_type, attr)
            found = index.get(literal)
            if not found:        # a necessary conjunct no offer satisfies
                self.indexed_queries += 1
                return []
            if bucket is None or len(found) < len(bucket):
                bucket = found
                bucket_conjunct = (attr, literal)
        if bucket is None:
            self.linear_queries += 1
            matches_fn = matcher._match_fn
            matched = [o for o in pool.values() if matches_fn(o.properties)]
        else:
            self.indexed_queries += 1
            # Bucket members satisfy the equality conjunct by construction,
            # so match against the constraint with that conjunct removed.
            matches_fn = compiled_match_without(constraint, *bucket_conjunct)
            matched = [o for o in bucket.values() if matches_fn(o.properties)]
            # Bucket order drifts as modifies re-file offers; sort the
            # (smaller) match set back to export order for determinism.
            matched.sort(key=_by_seq)

        if preference.strip():
            score = Preference(preference)._constraint._score_fn
            if 0 <= max_offers < len(matched):
                # Equivalent to the stable descending sort + slice below,
                # in O(n log k) instead of O(n log n).  The index tiebreak
                # makes tuple comparison total, so no key callback needed.
                keyed = [
                    (-score(o.properties), i) for i, o in enumerate(matched)
                ]
                top = heapq.nsmallest(max_offers, keyed)
                matched = [matched[i] for _, i in top]
            else:
                matched.sort(key=lambda o: score(o.properties), reverse=True)
        if max_offers >= 0:
            matched = matched[:max_offers]
        return [offer.as_dict(copy_properties) for offer in matched]

    def query_linear(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
        max_offers: int = -1,
    ) -> list:
        """Reference oracle: full scan with the interpreted evaluator.

        This is the original, pre-index implementation — no parse cache,
        no compiled closures, no buckets.  The equivalence tests assert
        :meth:`query` returns identical offers in identical order; the
        benchmarks use it as the speedup baseline.
        """
        matcher = Constraint(constraint, compiled=False)
        candidates = [
            offer
            for offer in self._offers.values()
            if offer.service_type == service_type
            and matcher.matches(offer.properties)
        ]
        if preference.strip():
            rank = Preference(preference, compiled=False)
            candidates.sort(
                key=lambda o: rank.score(o.properties), reverse=True
            )
        if max_offers >= 0:
            candidates = candidates[:max_offers]
        return [offer.as_dict() for offer in candidates]

    @property
    def offer_count(self) -> int:
        return len(self._offers)

    def offer(self, offer_id: str) -> Offer:
        """Direct lookup, mostly for tests and monitoring."""
        try:
            return self._offers[offer_id]
        except KeyError:
            raise UnknownOffer(offer_id) from None
