"""A lightweight CORBA-style ORB, in the spirit of UIC-CORBA.

The original InteGrade prototype ran its LRM on UIC-CORBA (a 90 KB
C++ ORB) and its GRM on JacORB, storing offers in the JacORB Trader.
This package is the Python substitute: typed interface definitions,
CDR-flavoured binary marshalling, stringifiable object references,
an in-process transport (used by the simulator, with exact message and
byte accounting) and a TCP transport (real sockets, exercised by the
integration tests), plus Naming and Trading services.
"""

from repro.orb.exceptions import (
    CommunicationError,
    MarshalError,
    ObjectNotFound,
    OrbError,
    RemoteInvocationError,
)
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.cdr import (
    Boolean,
    CdrDecoder,
    CdrEncoder,
    Double,
    Enum,
    Long,
    LongLong,
    Octets,
    Sequence,
    String,
    Struct,
    ULong,
    Variant,
    Void,
)
from repro.orb.ior import ObjectRef
from repro.orb.core import Orb
from repro.orb.naming import NamingService, NAMING_INTERFACE
from repro.orb.trading import TradingService, TRADING_INTERFACE, Offer

__all__ = [
    "OrbError",
    "MarshalError",
    "ObjectNotFound",
    "CommunicationError",
    "RemoteInvocationError",
    "InterfaceDef",
    "Operation",
    "Parameter",
    "CdrEncoder",
    "CdrDecoder",
    "Void",
    "Boolean",
    "Long",
    "ULong",
    "LongLong",
    "Double",
    "String",
    "Octets",
    "Sequence",
    "Struct",
    "Enum",
    "Variant",
    "ObjectRef",
    "Orb",
    "NamingService",
    "NAMING_INTERFACE",
    "TradingService",
    "TRADING_INTERFACE",
    "Offer",
]
