"""CDR-flavoured binary marshalling.

Implements the parts of CORBA's Common Data Representation the middleware
needs: aligned little-endian primitives, length-prefixed strings and
sequences, structs, enums, and a tagged ``Variant`` (standing in for the
CORBA ``any``) used by the Trading service's property lists.

Types are objects with ``encode``/``decode`` methods, so an operation
signature is simply a list of type objects and marshalling is table-driven.

Hot-path layout: every primitive uses a module-level precompiled
:class:`struct.Struct`, and each message :class:`Struct` compiles — once,
on first use — a *plan* that fuses consecutive fixed-size primitive
fields into a single pack/unpack call.  Because CDR alignment is relative
to the start of the whole buffer, each fused run is compiled into eight
variants, one per possible starting offset mod 8, with the inter-field
padding baked into the format string as ``x`` bytes.  Plans are shared
across message types through a cache keyed by the run's field signature.
The wire format is bit-identical to the naive field-at-a-time encoder.

Zero-copy decode: :class:`CdrDecoder` reads from ``bytes``/``bytearray``
/``memoryview`` buffers alike; ``zero_copy=True`` additionally makes
``read_octets`` return copy-free ``memoryview`` slices.  On the encode
side, :func:`acquire_encoder`/:func:`release_encoder` pool encoders so
hot paths reuse one bytearray allocation per message.  Neither changes
a single wire byte.
"""

import struct as _struct
from typing import Any, Sequence as _SequenceT

from repro.orb.exceptions import MarshalError

_S_OCTET = _struct.Struct("<B")
_S_SHORT = _struct.Struct("<h")
_S_USHORT = _struct.Struct("<H")
_S_LONG = _struct.Struct("<i")
_S_ULONG = _struct.Struct("<I")
_S_LONGLONG = _struct.Struct("<q")
_S_DOUBLE = _struct.Struct("<d")

_PAD = (b"", b"\x00", b"\x00\x00", b"\x00\x00\x00",
        b"\x00\x00\x00\x00", b"\x00\x00\x00\x00\x00",
        b"\x00\x00\x00\x00\x00\x00", b"\x00\x00\x00\x00\x00\x00\x00")


class CdrEncoder:
    """Append-only aligned binary writer."""

    def __init__(self):
        self._buf = bytearray()

    def reset(self) -> None:
        """Empty the buffer so the encoder (and its allocation) can be
        reused for another message; see :func:`acquire_encoder`."""
        del self._buf[:]

    def align(self, boundary: int) -> None:
        remainder = len(self._buf) % boundary
        if remainder:
            self._buf.extend(_PAD[boundary - remainder])

    def _pack(self, packer: _struct.Struct, size: int, value) -> None:
        buf = self._buf
        remainder = len(buf) % size
        if remainder:
            buf.extend(_PAD[size - remainder])
        try:
            buf.extend(packer.pack(value))
        except _struct.error as exc:
            raise MarshalError(
                f"cannot pack {value!r} as {packer.format!r}: {exc}"
            ) from exc

    def write_octet(self, value: int) -> None:
        try:
            self._buf.extend(_S_OCTET.pack(value))
        except _struct.error as exc:
            raise MarshalError(
                f"cannot pack {value!r} as '<B': {exc}"
            ) from exc

    def write_boolean(self, value: bool) -> None:
        self.write_octet(1 if value else 0)

    def write_short(self, value: int) -> None:
        self._pack(_S_SHORT, 2, value)

    def write_ushort(self, value: int) -> None:
        self._pack(_S_USHORT, 2, value)

    def write_long(self, value: int) -> None:
        self._pack(_S_LONG, 4, value)

    def write_ulong(self, value: int) -> None:
        self._pack(_S_ULONG, 4, value)

    def write_longlong(self, value: int) -> None:
        self._pack(_S_LONGLONG, 8, value)

    def write_double(self, value: float) -> None:
        self._pack(_S_DOUBLE, 8, float(value))

    def write_string(self, value: str) -> None:
        if not isinstance(value, str):
            raise MarshalError(f"expected str, got {type(value).__name__}")
        data = value.encode("utf-8")
        buf = self._buf
        remainder = len(buf) % 4
        if remainder:
            buf.extend(_PAD[4 - remainder])
        # CDR counts the terminating NUL in the length prefix.
        buf.extend(_S_ULONG.pack(len(data) + 1))
        buf.extend(data)
        buf.append(0)

    def write_octets(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise MarshalError(f"expected bytes, got {type(value).__name__}")
        # bytearray.extend consumes bytes/bytearray/memoryview directly,
        # so no intermediate copy is made for buffer-backed values.
        self.write_ulong(len(value))
        self._buf.extend(value)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


# A small free-list of encoders so hot paths can reuse the underlying
# bytearray allocation instead of building a fresh one per message.
# list.append/list.pop are atomic under the GIL, so no lock is needed.
# ``getvalue()`` copies, so a released encoder never aliases a payload.
_ENCODER_POOL: list = []
_ENCODER_POOL_MAX = 16


def acquire_encoder() -> CdrEncoder:
    """A cleared :class:`CdrEncoder`, reusing a pooled one when available."""
    try:
        enc = _ENCODER_POOL.pop()
    except IndexError:
        return CdrEncoder()
    enc.reset()
    return enc


def release_encoder(enc: CdrEncoder) -> None:
    """Return an encoder to the pool (dropped when the pool is full)."""
    if len(_ENCODER_POOL) < _ENCODER_POOL_MAX:
        _ENCODER_POOL.append(enc)


class CdrDecoder:
    """Aligned binary reader matching :class:`CdrEncoder`.

    Accepts ``bytes``, ``bytearray``, or ``memoryview`` buffers; every
    primitive reads straight out of the buffer with ``unpack_from``.
    With ``zero_copy=True`` the buffer is wrapped in a ``memoryview``
    once and :meth:`read_octets` returns copy-free slices of it (the
    caller must not outlive or mutate the backing buffer); string
    decoding also goes through the view, so the slice before UTF-8
    decoding never materialises an intermediate ``bytes``.  Decoded
    *values* are identical either way except for the octet slices'
    type (``memoryview`` instead of ``bytes``, equal by content).
    """

    def __init__(self, data, zero_copy: bool = False):
        if zero_copy and not isinstance(data, memoryview):
            data = memoryview(data)
        self._data = data
        self._pos = 0
        self._zero_copy = zero_copy

    def align(self, boundary: int) -> None:
        remainder = self._pos % boundary
        if remainder:
            self._pos += boundary - remainder

    def _unpack(self, packer: _struct.Struct, size: int):
        pos = self._pos
        remainder = pos % size
        if remainder:
            pos += size - remainder
        end = pos + size
        if end > len(self._data):
            raise MarshalError(
                f"buffer underrun: need {size} bytes at {pos}, "
                f"have {len(self._data) - pos}"
            )
        (value,) = packer.unpack_from(self._data, pos)
        self._pos = end
        return value

    def read_octet(self) -> int:
        return self._unpack(_S_OCTET, 1)

    def read_boolean(self) -> bool:
        return bool(self._unpack(_S_OCTET, 1))

    def read_short(self) -> int:
        return self._unpack(_S_SHORT, 2)

    def read_ushort(self) -> int:
        return self._unpack(_S_USHORT, 2)

    def read_long(self) -> int:
        return self._unpack(_S_LONG, 4)

    def read_ulong(self) -> int:
        return self._unpack(_S_ULONG, 4)

    def read_longlong(self) -> int:
        return self._unpack(_S_LONGLONG, 8)

    def read_double(self) -> float:
        return self._unpack(_S_DOUBLE, 8)

    def read_string(self) -> str:
        data = self._data
        pos = self._pos
        remainder = pos % 4
        if remainder:
            pos += 4 - remainder
        if pos + 4 > len(data):
            raise MarshalError(
                f"buffer underrun: need 4 bytes at {pos}, "
                f"have {len(data) - pos}"
            )
        (length,) = _S_ULONG.unpack_from(data, pos)
        pos += 4
        if length == 0:
            raise MarshalError("string length must include the NUL terminator")
        end = pos + length
        if end > len(data):
            raise MarshalError("buffer underrun reading string body")
        if data[end - 1] != 0:
            raise MarshalError("string is not NUL-terminated")
        self._pos = end
        # str(buf, "utf-8") decodes bytes and memoryview slices alike;
        # on a memoryview the slice itself is copy-free.
        return str(data[pos:end - 1], "utf-8")

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        end = self._pos + length
        if end > len(self._data):
            raise MarshalError("buffer underrun reading octet sequence")
        raw = self._data[self._pos:end]
        self._pos = end
        if self._zero_copy:
            return raw
        return bytes(raw)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


# ---------------------------------------------------------------------------
# IDL type objects
# ---------------------------------------------------------------------------

class IdlType:
    """Base class; subclasses implement encode/decode for one IDL type."""

    name = "idl"

    def encode(self, enc: CdrEncoder, value) -> None:
        raise NotImplementedError

    def decode(self, dec: CdrDecoder):
        raise NotImplementedError

    def __repr__(self):
        return self.name


class _Void(IdlType):
    name = "void"

    def encode(self, enc, value):
        if value is not None:
            raise MarshalError(f"void cannot carry {value!r}")

    def decode(self, dec):
        return None


class _Boolean(IdlType):
    name = "boolean"

    def encode(self, enc, value):
        enc.write_boolean(bool(value))

    def decode(self, dec):
        return dec.read_boolean()


class _Octet(IdlType):
    name = "octet"

    def encode(self, enc, value):
        enc.write_octet(value)

    def decode(self, dec):
        return dec.read_octet()


class _Short(IdlType):
    name = "short"

    def encode(self, enc, value):
        enc.write_short(value)

    def decode(self, dec):
        return dec.read_short()


class _UShort(IdlType):
    name = "ushort"

    def encode(self, enc, value):
        enc.write_ushort(value)

    def decode(self, dec):
        return dec.read_ushort()


class _Long(IdlType):
    name = "long"

    def encode(self, enc, value):
        enc.write_long(value)

    def decode(self, dec):
        return dec.read_long()


class _ULong(IdlType):
    name = "ulong"

    def encode(self, enc, value):
        enc.write_ulong(value)

    def decode(self, dec):
        return dec.read_ulong()


class _LongLong(IdlType):
    name = "longlong"

    def encode(self, enc, value):
        enc.write_longlong(value)

    def decode(self, dec):
        return dec.read_longlong()


class _Double(IdlType):
    name = "double"

    def encode(self, enc, value):
        enc.write_double(value)

    def decode(self, dec):
        return dec.read_double()


class _String(IdlType):
    name = "string"

    def encode(self, enc, value):
        enc.write_string(value)

    def decode(self, dec):
        return dec.read_string()


class _Octets(IdlType):
    name = "octets"

    def encode(self, enc, value):
        enc.write_octets(value)

    def decode(self, dec):
        return dec.read_octets()


Void = _Void()
Boolean = _Boolean()
Octet = _Octet()
Short = _Short()
UShort = _UShort()
Long = _Long()
ULong = _ULong()
LongLong = _LongLong()
Double = _Double()
String = _String()
Octets = _Octets()

# Fixed-size primitives that can be fused into a single (un)pack call.
# type class -> (format char, size, needs 0/1 bool normalization)
_FIXED_PRIMS = {
    _Boolean: ("B", 1, True),
    _Octet: ("B", 1, False),
    _Short: ("h", 2, False),
    _UShort: ("H", 2, False),
    _Long: ("i", 4, False),
    _ULong: ("I", 4, False),
    _LongLong: ("q", 8, False),
    _Double: ("d", 8, False),
}


class _Run:
    """A maximal run of fixed-size primitive fields, compiled per alignment.

    ``variants[a]`` holds ``(packer, total_bytes)`` for a run starting at
    buffer offset ``a`` (mod 8); inter-field CDR padding is baked into the
    format string as ``x`` bytes, so one pack/unpack handles the whole run
    at that alignment.
    """

    __slots__ = ("names", "bool_indices", "variants", "field_types")

    def __init__(self, names, specs, field_types):
        self.names = names
        self.field_types = field_types   # for the slow error-reporting path
        self.bool_indices = tuple(
            i for i, (_c, _s, is_bool) in enumerate(specs) if is_bool
        )
        self.variants = []
        for start in range(8):
            fmt = ["<"]
            pos = start
            for char, size, _is_bool in specs:
                pad = (-pos) % size
                if pad:
                    fmt.append("x" * pad)
                fmt.append(char)
                pos += pad + size
            packer = _struct.Struct("".join(fmt))
            self.variants.append((packer, pos - start))


# Shared across message types: run signature -> compiled _Run variants.
_RUN_CACHE: dict = {}


def _compile_plan(fields):
    """Split a struct's fields into fused runs and residual fields.

    Returns a list of segments: ``("run", _Run)`` or ``("field", name,
    idl_type)``.  Runs are shared through :data:`_RUN_CACHE` keyed by the
    (name, format) signature.
    """
    plan = []
    pending = []   # (name, spec, idl_type) of the run under construction

    def flush():
        if not pending:
            return
        if len(pending) == 1:
            name, _spec, ftype = pending[0]
            plan.append(("field", name, ftype))
        else:
            key = tuple((name, spec[0], spec[2]) for name, spec, _t in pending)
            run = _RUN_CACHE.get(key)
            if run is None:
                run = _Run(
                    tuple(name for name, _s, _t in pending),
                    tuple(spec for _n, spec, _t in pending),
                    tuple(ftype for _n, _s, ftype in pending),
                )
                _RUN_CACHE[key] = run
            plan.append(("run", run))
        pending.clear()

    for fname, ftype in fields:
        spec = _FIXED_PRIMS.get(type(ftype))
        if spec is not None:
            pending.append((fname, spec, ftype))
        else:
            flush()
            plan.append(("field", fname, ftype))
    flush()
    return plan


class Sequence(IdlType):
    """A length-prefixed homogeneous sequence.

    Sequences of fixed-size primitives marshal the whole payload with a
    single pack/unpack call.
    """

    def __init__(self, element: IdlType):
        self.element = element
        self.name = f"sequence<{element.name}>"
        self._prim = _FIXED_PRIMS.get(type(element))

    def encode(self, enc, value):
        if not isinstance(value, (list, tuple)):
            raise MarshalError(
                f"expected list/tuple for {self.name}, got {type(value).__name__}"
            )
        enc.write_ulong(len(value))
        if self._prim is not None and value:
            char, size, is_bool = self._prim
            buf = enc._buf
            pad = (-len(buf)) % size
            if pad:
                buf.extend(_PAD[pad])
            if is_bool:
                value = [1 if v else 0 for v in value]
            try:
                buf.extend(_struct.pack(f"<{len(value)}{char}", *value))
            except _struct.error:
                pass   # fall through to per-element for the exact error
            else:
                return
        for item in value:
            self.element.encode(enc, item)

    def decode(self, dec):
        count = dec.read_ulong()
        if self._prim is not None and count:
            char, size, is_bool = self._prim
            pos = dec._pos
            pos += (-pos) % size
            total = count * size
            if pos + total > len(dec._data):
                raise MarshalError(
                    f"buffer underrun: need {total} bytes at {pos}, "
                    f"have {len(dec._data) - pos}"
                )
            values = _struct.unpack_from(f"<{count}{char}", dec._data, pos)
            dec._pos = pos + total
            if is_bool:
                return [bool(v) for v in values]
            return list(values)
        return [self.element.decode(dec) for _ in range(count)]


class Struct(IdlType):
    """A named struct; Python-side values are plain dicts.

    Marshalling is driven by a compiled plan (see :func:`_compile_plan`)
    that fuses consecutive fixed-size primitive fields into single
    pack/unpack calls; the wire format is identical to encoding each
    field on its own.
    """

    def __init__(self, name: str, fields: _SequenceT):
        self.name = name
        self.fields = list(fields)
        field_names = [fname for fname, _ in self.fields]
        if len(set(field_names)) != len(field_names):
            raise ValueError(f"duplicate field in struct {name!r}")
        self._plan = None

    def _encode_run_slow(self, enc, run: "_Run", value) -> None:
        """Field-at-a-time re-run after a fused pack failed, for the
        exact per-field MarshalError the naive encoder raises."""
        for fname, ftype in zip(run.names, run.field_types):
            ftype.encode(enc, value[fname])
        raise MarshalError(
            f"fused pack failed for struct {self.name} but the per-field "
            "encoding succeeded"
        )

    def encode(self, enc, value):
        if not isinstance(value, dict):
            raise MarshalError(
                f"expected dict for struct {self.name}, got {type(value).__name__}"
            )
        plan = self._plan
        if plan is None:
            plan = self._plan = _compile_plan(self.fields)
        buf = enc._buf
        for segment in plan:
            if segment[0] == "run":
                run = segment[1]
                try:
                    values = [value[n] for n in run.names]
                except KeyError as exc:
                    raise MarshalError(
                        f"struct {self.name} missing field {exc.args[0]!r}"
                    ) from None
                for i in run.bool_indices:
                    values[i] = 1 if values[i] else 0
                packer, _total = run.variants[len(buf) % 8]
                try:
                    buf.extend(packer.pack(*values))
                except _struct.error:
                    self._encode_run_slow(enc, run, value)
            else:
                _tag, fname, ftype = segment
                if fname not in value:
                    raise MarshalError(
                        f"struct {self.name} missing field {fname!r}"
                    )
                ftype.encode(enc, value[fname])

    def decode(self, dec):
        plan = self._plan
        if plan is None:
            plan = self._plan = _compile_plan(self.fields)
        result = {}
        for segment in plan:
            if segment[0] == "run":
                run = segment[1]
                pos = dec._pos
                packer, total = run.variants[pos % 8]
                if pos + total > len(dec._data):
                    raise MarshalError(
                        f"buffer underrun: need {total} bytes at {pos}, "
                        f"have {len(dec._data) - pos}"
                    )
                values = packer.unpack_from(dec._data, pos)
                dec._pos = pos + total
                names = run.names
                for i, name in enumerate(names):
                    result[name] = values[i]
                for i in run.bool_indices:
                    result[names[i]] = bool(result[names[i]])
            else:
                result[segment[1]] = segment[2].decode(dec)
        return result


class Enum(IdlType):
    """A named enum; Python-side values are the member strings."""

    def __init__(self, name: str, members: _SequenceT):
        self.name = name
        self.members = list(members)
        self._index = {m: i for i, m in enumerate(self.members)}

    def encode(self, enc, value):
        if value not in self._index:
            raise MarshalError(f"{value!r} is not a member of enum {self.name}")
        enc.write_ulong(self._index[value])

    def decode(self, dec):
        index = dec.read_ulong()
        if index >= len(self.members):
            raise MarshalError(f"enum {self.name} has no member #{index}")
        return self.members[index]


class Variant(IdlType):
    """A tagged dynamic value (the role CORBA's ``any`` plays).

    Supports None, bool, int, float, str, bytes, and lists/dicts thereof —
    enough for Trader property lists and LUPA pattern uploads.
    """

    name = "variant"

    _NONE, _BOOL, _LONGLONG, _DOUBLE, _STRING, _BYTES, _LIST, _DICT = range(8)

    def encode(self, enc, value):
        if value is None:
            enc.write_octet(self._NONE)
        elif isinstance(value, bool):
            enc.write_octet(self._BOOL)
            enc.write_boolean(value)
        elif isinstance(value, int):
            enc.write_octet(self._LONGLONG)
            enc.write_longlong(value)
        elif isinstance(value, float):
            enc.write_octet(self._DOUBLE)
            enc.write_double(value)
        elif isinstance(value, str):
            enc.write_octet(self._STRING)
            enc.write_string(value)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            enc.write_octet(self._BYTES)
            enc.write_octets(bytes(value))
        elif isinstance(value, (list, tuple)):
            enc.write_octet(self._LIST)
            enc.write_ulong(len(value))
            for item in value:
                self.encode(enc, item)
        elif isinstance(value, dict):
            enc.write_octet(self._DICT)
            enc.write_ulong(len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise MarshalError("variant dict keys must be strings")
                enc.write_string(key)
                self.encode(enc, item)
        else:
            raise MarshalError(
                f"variant cannot carry {type(value).__name__} values"
            )

    def decode(self, dec):
        tag = dec.read_octet()
        if tag == self._NONE:
            return None
        if tag == self._BOOL:
            return dec.read_boolean()
        if tag == self._LONGLONG:
            return dec.read_longlong()
        if tag == self._DOUBLE:
            return dec.read_double()
        if tag == self._STRING:
            return dec.read_string()
        if tag == self._BYTES:
            return dec.read_octets()
        if tag == self._LIST:
            count = dec.read_ulong()
            return [self.decode(dec) for _ in range(count)]
        if tag == self._DICT:
            count = dec.read_ulong()
            return {dec.read_string(): self.decode(dec) for _ in range(count)}
        raise MarshalError(f"unknown variant tag {tag}")


VARIANT = Variant()
