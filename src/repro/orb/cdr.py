"""CDR-flavoured binary marshalling.

Implements the parts of CORBA's Common Data Representation the middleware
needs: aligned little-endian primitives, length-prefixed strings and
sequences, structs, enums, and a tagged ``Variant`` (standing in for the
CORBA ``any``) used by the Trading service's property lists.

Types are objects with ``encode``/``decode`` methods, so an operation
signature is simply a list of type objects and marshalling is table-driven.
"""

import struct as _struct
from typing import Any, Sequence as _SequenceT

from repro.orb.exceptions import MarshalError


class CdrEncoder:
    """Append-only aligned binary writer."""

    def __init__(self):
        self._buf = bytearray()

    def align(self, boundary: int) -> None:
        remainder = len(self._buf) % boundary
        if remainder:
            self._buf.extend(b"\x00" * (boundary - remainder))

    def _pack(self, fmt: str, size: int, value) -> None:
        self.align(size)
        try:
            self._buf.extend(_struct.pack(fmt, value))
        except _struct.error as exc:
            raise MarshalError(f"cannot pack {value!r} as {fmt!r}: {exc}") from exc

    def write_octet(self, value: int) -> None:
        self._pack("<B", 1, value)

    def write_boolean(self, value: bool) -> None:
        self.write_octet(1 if value else 0)

    def write_short(self, value: int) -> None:
        self._pack("<h", 2, value)

    def write_ushort(self, value: int) -> None:
        self._pack("<H", 2, value)

    def write_long(self, value: int) -> None:
        self._pack("<i", 4, value)

    def write_ulong(self, value: int) -> None:
        self._pack("<I", 4, value)

    def write_longlong(self, value: int) -> None:
        self._pack("<q", 8, value)

    def write_double(self, value: float) -> None:
        self._pack("<d", 8, float(value))

    def write_string(self, value: str) -> None:
        if not isinstance(value, str):
            raise MarshalError(f"expected str, got {type(value).__name__}")
        data = value.encode("utf-8")
        self.write_ulong(len(data) + 1)   # CDR counts the terminating NUL
        self._buf.extend(data)
        self._buf.append(0)

    def write_octets(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise MarshalError(f"expected bytes, got {type(value).__name__}")
        data = bytes(value)
        self.write_ulong(len(data))
        self._buf.extend(data)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class CdrDecoder:
    """Aligned binary reader matching :class:`CdrEncoder`."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def align(self, boundary: int) -> None:
        remainder = self._pos % boundary
        if remainder:
            self._pos += boundary - remainder

    def _unpack(self, fmt: str, size: int):
        self.align(size)
        end = self._pos + size
        if end > len(self._data):
            raise MarshalError(
                f"buffer underrun: need {size} bytes at {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        (value,) = _struct.unpack_from(fmt, self._data, self._pos)
        self._pos = end
        return value

    def read_octet(self) -> int:
        return self._unpack("<B", 1)

    def read_boolean(self) -> bool:
        return bool(self.read_octet())

    def read_short(self) -> int:
        return self._unpack("<h", 2)

    def read_ushort(self) -> int:
        return self._unpack("<H", 2)

    def read_long(self) -> int:
        return self._unpack("<i", 4)

    def read_ulong(self) -> int:
        return self._unpack("<I", 4)

    def read_longlong(self) -> int:
        return self._unpack("<q", 8)

    def read_double(self) -> float:
        return self._unpack("<d", 8)

    def read_string(self) -> str:
        length = self.read_ulong()
        if length == 0:
            raise MarshalError("string length must include the NUL terminator")
        end = self._pos + length
        if end > len(self._data):
            raise MarshalError("buffer underrun reading string body")
        raw = self._data[self._pos:end - 1]
        if self._data[end - 1] != 0:
            raise MarshalError("string is not NUL-terminated")
        self._pos = end
        return raw.decode("utf-8")

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        end = self._pos + length
        if end > len(self._data):
            raise MarshalError("buffer underrun reading octet sequence")
        raw = self._data[self._pos:end]
        self._pos = end
        return bytes(raw)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


# ---------------------------------------------------------------------------
# IDL type objects
# ---------------------------------------------------------------------------

class IdlType:
    """Base class; subclasses implement encode/decode for one IDL type."""

    name = "idl"

    def encode(self, enc: CdrEncoder, value) -> None:
        raise NotImplementedError

    def decode(self, dec: CdrDecoder):
        raise NotImplementedError

    def __repr__(self):
        return self.name


class _Void(IdlType):
    name = "void"

    def encode(self, enc, value):
        if value is not None:
            raise MarshalError(f"void cannot carry {value!r}")

    def decode(self, dec):
        return None


class _Boolean(IdlType):
    name = "boolean"

    def encode(self, enc, value):
        enc.write_boolean(bool(value))

    def decode(self, dec):
        return dec.read_boolean()


class _Octet(IdlType):
    name = "octet"

    def encode(self, enc, value):
        enc.write_octet(value)

    def decode(self, dec):
        return dec.read_octet()


class _Short(IdlType):
    name = "short"

    def encode(self, enc, value):
        enc.write_short(value)

    def decode(self, dec):
        return dec.read_short()


class _UShort(IdlType):
    name = "ushort"

    def encode(self, enc, value):
        enc.write_ushort(value)

    def decode(self, dec):
        return dec.read_ushort()


class _Long(IdlType):
    name = "long"

    def encode(self, enc, value):
        enc.write_long(value)

    def decode(self, dec):
        return dec.read_long()


class _ULong(IdlType):
    name = "ulong"

    def encode(self, enc, value):
        enc.write_ulong(value)

    def decode(self, dec):
        return dec.read_ulong()


class _LongLong(IdlType):
    name = "longlong"

    def encode(self, enc, value):
        enc.write_longlong(value)

    def decode(self, dec):
        return dec.read_longlong()


class _Double(IdlType):
    name = "double"

    def encode(self, enc, value):
        enc.write_double(value)

    def decode(self, dec):
        return dec.read_double()


class _String(IdlType):
    name = "string"

    def encode(self, enc, value):
        enc.write_string(value)

    def decode(self, dec):
        return dec.read_string()


class _Octets(IdlType):
    name = "octets"

    def encode(self, enc, value):
        enc.write_octets(value)

    def decode(self, dec):
        return dec.read_octets()


Void = _Void()
Boolean = _Boolean()
Octet = _Octet()
Short = _Short()
UShort = _UShort()
Long = _Long()
ULong = _ULong()
LongLong = _LongLong()
Double = _Double()
String = _String()
Octets = _Octets()


class Sequence(IdlType):
    """A length-prefixed homogeneous sequence."""

    def __init__(self, element: IdlType):
        self.element = element
        self.name = f"sequence<{element.name}>"

    def encode(self, enc, value):
        if not isinstance(value, (list, tuple)):
            raise MarshalError(
                f"expected list/tuple for {self.name}, got {type(value).__name__}"
            )
        enc.write_ulong(len(value))
        for item in value:
            self.element.encode(enc, item)

    def decode(self, dec):
        count = dec.read_ulong()
        return [self.element.decode(dec) for _ in range(count)]


class Struct(IdlType):
    """A named struct; Python-side values are plain dicts."""

    def __init__(self, name: str, fields: _SequenceT):
        self.name = name
        self.fields = list(fields)
        field_names = [fname for fname, _ in self.fields]
        if len(set(field_names)) != len(field_names):
            raise ValueError(f"duplicate field in struct {name!r}")

    def encode(self, enc, value):
        if not isinstance(value, dict):
            raise MarshalError(
                f"expected dict for struct {self.name}, got {type(value).__name__}"
            )
        for fname, ftype in self.fields:
            if fname not in value:
                raise MarshalError(f"struct {self.name} missing field {fname!r}")
            ftype.encode(enc, value[fname])

    def decode(self, dec):
        return {fname: ftype.decode(dec) for fname, ftype in self.fields}


class Enum(IdlType):
    """A named enum; Python-side values are the member strings."""

    def __init__(self, name: str, members: _SequenceT):
        self.name = name
        self.members = list(members)
        self._index = {m: i for i, m in enumerate(self.members)}

    def encode(self, enc, value):
        if value not in self._index:
            raise MarshalError(f"{value!r} is not a member of enum {self.name}")
        enc.write_ulong(self._index[value])

    def decode(self, dec):
        index = dec.read_ulong()
        if index >= len(self.members):
            raise MarshalError(f"enum {self.name} has no member #{index}")
        return self.members[index]


class Variant(IdlType):
    """A tagged dynamic value (the role CORBA's ``any`` plays).

    Supports None, bool, int, float, str, bytes, and lists/dicts thereof —
    enough for Trader property lists and LUPA pattern uploads.
    """

    name = "variant"

    _NONE, _BOOL, _LONGLONG, _DOUBLE, _STRING, _BYTES, _LIST, _DICT = range(8)

    def encode(self, enc, value):
        if value is None:
            enc.write_octet(self._NONE)
        elif isinstance(value, bool):
            enc.write_octet(self._BOOL)
            enc.write_boolean(value)
        elif isinstance(value, int):
            enc.write_octet(self._LONGLONG)
            enc.write_longlong(value)
        elif isinstance(value, float):
            enc.write_octet(self._DOUBLE)
            enc.write_double(value)
        elif isinstance(value, str):
            enc.write_octet(self._STRING)
            enc.write_string(value)
        elif isinstance(value, (bytes, bytearray)):
            enc.write_octet(self._BYTES)
            enc.write_octets(bytes(value))
        elif isinstance(value, (list, tuple)):
            enc.write_octet(self._LIST)
            enc.write_ulong(len(value))
            for item in value:
                self.encode(enc, item)
        elif isinstance(value, dict):
            enc.write_octet(self._DICT)
            enc.write_ulong(len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise MarshalError("variant dict keys must be strings")
                enc.write_string(key)
                self.encode(enc, item)
        else:
            raise MarshalError(
                f"variant cannot carry {type(value).__name__} values"
            )

    def decode(self, dec):
        tag = dec.read_octet()
        if tag == self._NONE:
            return None
        if tag == self._BOOL:
            return dec.read_boolean()
        if tag == self._LONGLONG:
            return dec.read_longlong()
        if tag == self._DOUBLE:
            return dec.read_double()
        if tag == self._STRING:
            return dec.read_string()
        if tag == self._BYTES:
            return dec.read_octets()
        if tag == self._LIST:
            count = dec.read_ulong()
            return [self.decode(dec) for _ in range(count)]
        if tag == self._DICT:
            count = dec.read_ulong()
            return {dec.read_string(): self.decode(dec) for _ in range(count)}
        raise MarshalError(f"unknown variant tag {tag}")


VARIANT = Variant()
