"""Interoperable object references.

An :class:`ObjectRef` identifies a servant: the interface it implements,
its object key, and one or more transport endpoints.  References can be
stringified ("IOR:..." hex, like CORBA) so they can be stored in the
Naming service, the Trader, or configuration files.
"""

from dataclasses import dataclass

from repro.orb.cdr import (
    CdrDecoder,
    CdrEncoder,
    Sequence,
    String,
    Struct,
)
from repro.orb.exceptions import MarshalError

_ENDPOINT = Struct("Endpoint", [("kind", String), ("address", String)])
_REF = Struct(
    "ObjectRef",
    [
        ("interface", String),
        ("key", String),
        ("endpoints", Sequence(_ENDPOINT)),
    ],
)

INPROC = "inproc"
TCP = "tcp"


@dataclass(frozen=True)
class ObjectRef:
    """An immutable reference to a remote (or co-located) object.

    ``endpoints`` is a tuple of (kind, address) pairs: ``("inproc",
    "<orb name>")`` or ``("tcp", "host:port")``.  Multiple profiles let a
    client pick whichever transport it shares with the servant.
    """

    interface: str
    key: str
    endpoints: tuple

    def __post_init__(self):
        if not self.endpoints:
            raise ValueError("an object reference needs at least one endpoint")
        for endpoint in self.endpoints:
            if len(endpoint) != 2:
                raise ValueError(f"malformed endpoint {endpoint!r}")

    def endpoint_of_kind(self, kind: str):
        """First endpoint of the given transport kind, or None."""
        for ep_kind, address in self.endpoints:
            if ep_kind == kind:
                return (ep_kind, address)
        return None

    def to_string(self) -> str:
        """Stringify to an ``IOR:<hex>`` form."""
        enc = CdrEncoder()
        _REF.encode(enc, {
            "interface": self.interface,
            "key": self.key,
            "endpoints": [
                {"kind": k, "address": a} for k, a in self.endpoints
            ],
        })
        return "IOR:" + enc.getvalue().hex()

    @classmethod
    def from_string(cls, text: str) -> "ObjectRef":
        """Parse an ``IOR:<hex>`` string back into a reference."""
        if not text.startswith("IOR:"):
            raise MarshalError(f"not an IOR string: {text[:16]!r}...")
        try:
            raw = bytes.fromhex(text[4:])
        except ValueError as exc:
            raise MarshalError(f"bad IOR hex payload: {exc}") from exc
        fields = _REF.decode(CdrDecoder(raw))
        return cls(
            interface=fields["interface"],
            key=fields["key"],
            endpoints=tuple(
                (ep["kind"], ep["address"]) for ep in fields["endpoints"]
            ),
        )

    def __str__(self):
        return self.to_string()
