"""ORB exception hierarchy."""


class OrbError(Exception):
    """Base class for all ORB-level failures."""


class MarshalError(OrbError):
    """A value could not be encoded or decoded."""


class ObjectNotFound(OrbError):
    """No servant is registered under the requested object key."""


class BadOperation(OrbError):
    """The interface has no such operation."""


class CommunicationError(OrbError):
    """The transport failed to deliver a request or reply."""


class RemoteInvocationError(OrbError):
    """The servant raised; carries the remote exception type and message."""

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message
