"""Naming service — the CORBA Naming Service equivalent.

Maps hierarchical names ("cluster0/grm") to stringified object
references.  The service is itself a servant, so clusters can export it
and peers can bootstrap from a single IOR.
"""

from typing import Optional

from repro.orb.cdr import Boolean, Sequence, String, Void
from repro.orb.idl import InterfaceDef, Operation, Parameter

NAMING_INTERFACE = InterfaceDef(
    "integrade/Naming",
    [
        Operation(
            "bind",
            (Parameter("name", String), Parameter("ior", String)),
            Void,
        ),
        Operation(
            "rebind",
            (Parameter("name", String), Parameter("ior", String)),
            Void,
        ),
        Operation("resolve", (Parameter("name", String),), String),
        Operation("unbind", (Parameter("name", String),), Void),
        Operation("bound", (Parameter("name", String),), Boolean),
        Operation("list", (Parameter("prefix", String),), Sequence(String)),
    ],
)


class NameNotFound(Exception):
    """The requested name has no binding."""


class NameAlreadyBound(Exception):
    """bind() refuses to overwrite; use rebind()."""


class NamingService:
    """A flat store of hierarchical slash-separated names."""

    def __init__(self):
        self._bindings: dict[str, str] = {}

    @staticmethod
    def _check(name: str) -> str:
        if not name or name.startswith("/") or name.endswith("/"):
            raise ValueError(f"invalid name {name!r}")
        return name

    def bind(self, name: str, ior: str) -> None:
        """Create a new binding; fails if the name is taken."""
        name = self._check(name)
        if name in self._bindings:
            raise NameAlreadyBound(name)
        self._bindings[name] = ior

    def rebind(self, name: str, ior: str) -> None:
        """Create or overwrite a binding."""
        self._bindings[self._check(name)] = ior

    def resolve(self, name: str) -> str:
        """Return the IOR bound to ``name`` or raise NameNotFound."""
        try:
            return self._bindings[name]
        except KeyError:
            raise NameNotFound(name) from None

    def unbind(self, name: str) -> None:
        """Remove a binding or raise NameNotFound."""
        try:
            del self._bindings[name]
        except KeyError:
            raise NameNotFound(name) from None

    def bound(self, name: str) -> bool:
        """True iff the name has a binding."""
        return name in self._bindings

    def list(self, prefix: str) -> list:
        """All bound names starting with ``prefix`` (sorted)."""
        return sorted(n for n in self._bindings if n.startswith(prefix))
