"""Interface definitions — the Python stand-in for CORBA IDL.

An :class:`InterfaceDef` is the contract both sides share: the stub uses
it to marshal requests and the skeleton (inside the ORB) to unmarshal
them and marshal replies.  Signatures are table-driven over the type
objects in :mod:`repro.orb.cdr`.
"""

from dataclasses import dataclass, field
from typing import Sequence

from repro.orb.cdr import IdlType, Void
from repro.orb.exceptions import BadOperation


@dataclass(frozen=True)
class Parameter:
    """One operation parameter."""

    name: str
    idl_type: IdlType


@dataclass(frozen=True)
class Operation:
    """One remotely invocable operation.

    ``oneway`` operations return immediately without a reply, like CORBA's
    oneway calls — used for fire-and-forget status updates.
    """

    name: str
    params: tuple = ()
    returns: IdlType = Void
    oneway: bool = False

    def __post_init__(self):
        if self.oneway and self.returns is not Void:
            raise ValueError(
                f"oneway operation {self.name!r} cannot return a value"
            )


class InterfaceDef:
    """A named set of operations."""

    def __init__(self, name: str, operations: Sequence):
        self.name = name
        self._operations = {}
        for op in operations:
            if op.name in self._operations:
                raise ValueError(
                    f"duplicate operation {op.name!r} in interface {name!r}"
                )
            self._operations[op.name] = op

    @property
    def operations(self) -> dict:
        return dict(self._operations)

    def operation(self, name: str) -> Operation:
        """Look up an operation or raise :class:`BadOperation`."""
        try:
            return self._operations[name]
        except KeyError:
            raise BadOperation(
                f"interface {self.name!r} has no operation {name!r}"
            ) from None

    def validate_servant(self, servant) -> None:
        """Check the servant implements every operation."""
        missing = [
            op for op in self._operations
            if not callable(getattr(servant, op, None))
        ]
        if missing:
            raise BadOperation(
                f"servant {type(servant).__name__} does not implement "
                f"{self.name!r} operations: {', '.join(sorted(missing))}"
            )

    def __repr__(self):
        return f"InterfaceDef({self.name!r}, {len(self._operations)} ops)"
