"""The ORB: servant registration, stubs, and request dispatch.

Request wire format (after the transport's framing)::

    Struct RequestHeader { key: string, operation: string }
    <arguments, encoded per the operation signature>

Reply wire format::

    octet status   # 0 = ok, 1 = exception
    <result per signature>            (status 0)
    string exc_type; string message   (status 1)
"""

import itertools
import traceback
from typing import Optional, Union

from repro.security.auth import AuthenticationError, is_authenticated

from repro.orb.cdr import (
    CdrDecoder,
    CdrEncoder,
    String,
    Struct,
    acquire_encoder,
    release_encoder,
)
from repro.orb.exceptions import (
    BadOperation,
    CommunicationError,
    ObjectNotFound,
    OrbError,
    RemoteInvocationError,
)
from repro.orb.idl import InterfaceDef, Operation
from repro.orb.ior import INPROC, TCP, ObjectRef
from repro.orb.transport import (
    DEFAULT_DOMAIN,
    InProcDomain,
    InProcTransport,
    TcpTransport,
)

_REQUEST_HEADER = Struct(
    "RequestHeader", [("key", String), ("operation", String)]
)

_STATUS_OK = 0
_STATUS_EXCEPTION = 1

#: Reserved object key announcing a trace-context header extension.  A
#: traced request reads ``[_TRACE_KEY, trace_id, parent_span_id]`` before
#: the normal ``[key, operation]`` header; servant keys never start with
#: NUL, so untraced requests are byte-identical to the pre-tracing wire
#: format and any ORB can parse (and skip) the extension.
_TRACE_KEY = "\x00trace-ctx"

#: Reserved object key heading a oneway *batch* frame (same NUL-prefix
#: extension convention as :data:`_TRACE_KEY`).  The frame body is
#: ``ulong count`` followed by ``count`` length-prefixed sub-requests,
#: each a complete ordinary request payload; the receiver dispatches
#: them in order and discards the (oneway) replies.  Batch frames are
#: only ever sent to peers that advertised the capability, so
#: non-batching servers never see one and the wire is byte-identical
#: with batching off.
_BATCH_KEY = "\x00batch"

#: Modeled fixed cost of one transport invocation (framing + syscalls),
#: the same constant the BSP comm model charges per ORB call; batching
#: saves this once per coalesced call.  Feeds the ``orb.batch.bytes_saved``
#: metric — a model, not a wire-byte measurement.
_CALL_OVERHEAD_BYTES = 64

#: Flush a peer's queue early once its sub-payloads exceed this many
#: bytes, so one batch frame can never approach the transport frame cap.
_BATCH_FLUSH_BYTES = 1 << 20


class Stub:
    """Client-side proxy: marshals calls described by an InterfaceDef."""

    def __init__(self, orb: "Orb", interface: InterfaceDef, ref: ObjectRef):
        self._orb = orb
        self._interface = interface
        self._ref = ref

    @property
    def ref(self) -> ObjectRef:
        return self._ref

    def __getattr__(self, name: str):
        operation = self._interface.operation(name)   # raises BadOperation
        # The request header is constant per (ref, operation) and always
        # sits at offset 0, so its encoding can be computed once here and
        # spliced into every request.
        enc = CdrEncoder()
        _REQUEST_HEADER.encode(
            enc, {"key": self._ref.key, "operation": operation.name}
        )
        header = enc.getvalue()
        orb = self._orb
        ref = self._ref

        def call(*args):
            return orb.invoke(ref, operation, args, _header=header)

        call.__name__ = name
        # Cache on the instance so later lookups skip __getattr__.
        object.__setattr__(self, name, call)
        return call

    def __repr__(self):
        return f"Stub({self._interface.name}, key={self._ref.key!r})"


class Orb:
    """One Object Request Broker endpoint.

    Every grid component (LRM, GRM, Trader, ...) owns an ORB; servants are
    activated on it and receive an :class:`ObjectRef` that peers can
    resolve into a :class:`Stub`.
    """

    _names = itertools.count()

    def __init__(
        self,
        name: Optional[str] = None,
        domain: Optional[InProcDomain] = None,
        tcp: bool = False,
        tcp_host: str = "127.0.0.1",
        tcp_port: int = 0,
        credentials=None,
        keyring=None,
        require_auth: bool = False,
        fast_local: bool = False,
        batch_oneway: bool = False,
        zero_copy_cdr: bool = False,
        tcp_pipelined: bool = False,
    ):
        if require_auth and keyring is None:
            raise ValueError("require_auth needs a keyring to verify against")
        self.name = name if name is not None else f"orb{next(self._names)}"
        self.domain = domain if domain is not None else DEFAULT_DOMAIN
        self._servants: dict[str, tuple] = {}
        # (key, operation) -> (bound method, Operation); rebuilt lazily,
        # dropped whenever the servant table changes.
        self._dispatch_cache: dict[tuple, tuple] = {}
        # endpoints tuple -> (transport, address).  A stale entry after a
        # peer shutdown still fails with CommunicationError, just from the
        # transport instead of the routing step.
        self._route_cache: dict[tuple, tuple] = {}
        self._interfaces: dict[str, InterfaceDef] = {}
        self._key_counter = itertools.count()
        self.domain.register(self.name, self)
        self._inproc = InProcTransport(self.name, self.domain)
        self._tcp = (
            TcpTransport(self, tcp_host, tcp_port, pipelined=tcp_pipelined)
            if tcp else None
        )
        self.requests_handled = 0
        self._client_interceptors: list = []
        self._server_interceptors: list = []
        #: Optional span tracer (see :mod:`repro.obs.trace`).  None by
        #: default: the invoke/dispatch hot paths then pay one attribute
        #: check and allocate nothing.
        self._tracer = None
        self.credentials = credentials
        self.keyring = keyring
        self.require_auth = require_auth
        #: Principal of the request currently being dispatched (if any).
        self.current_principal: Optional[str] = None
        #: Opt-in zero-marshal dispatch between co-located ORBs that have
        #: *both* enabled it.  Off (the default) leaves every path —
        #: including the wire bytes — exactly as before.
        self.fast_local = fast_local
        #: Requests this ORB dispatched without touching CDR (diagnostic;
        #: deliberately not part of :meth:`stats`, whose key set is fixed).
        self.fast_local_calls = 0
        #: Opt-in transport-level oneway batching: queue oneway requests
        #: per (transport, address) and coalesce each queue into one
        #: "\x00batch" frame at :meth:`flush` (the grid flushes at every
        #: sim-event boundary).  Off (the default) leaves the wire
        #: byte-identical to the per-call path.
        self.batch_oneway = batch_oneway
        #: Capability advertised to batching clients: this ORB parses
        #: batch frames.  Conservative like the fast path — an ORB that
        #: requires authenticated requests never advertises it, so
        #: batches (which are never enveloped) stay off such wires.
        self.accepts_batch = batch_oneway and not require_auth
        #: Opt-in zero-copy CDR on the dispatch path: decode requests
        #: through a memoryview, so octet args arrive as copy-free
        #: slices, and reuse pooled encoders for request marshalling.
        #: Output bytes are bit-identical either way.
        self.zero_copy_cdr = zero_copy_cdr
        # (transport, address) -> queued oneway payloads / their bytes.
        self._batch_queues: dict[tuple, list] = {}
        self._batch_pending_bytes: dict[tuple, int] = {}
        # Called with this ORB the moment a queue becomes non-empty; the
        # grid uses it to schedule an end-of-event flush.
        self._batch_notify = None
        #: Batch accounting (diagnostic, like ``fast_local_calls``):
        #: oneway calls that rode a batch, frames actually sent, and the
        #: modeled per-call overhead those frames avoided.
        self.batch_calls = 0
        self.batch_frames = 0
        self.batch_bytes_saved = 0

    # -- servant side ---------------------------------------------------------

    def activate(
        self,
        servant,
        interface: InterfaceDef,
        key: Optional[str] = None,
    ) -> ObjectRef:
        """Register a servant and return its reference."""
        interface.validate_servant(servant)
        if key is None:
            key = f"{interface.name}/{next(self._key_counter)}"
        if key in self._servants:
            raise ValueError(f"object key {key!r} already active on {self.name}")
        self._servants[key] = (servant, interface)
        endpoints = [(INPROC, self._inproc.address)]
        if self._tcp is not None:
            endpoints.append((TCP, self._tcp.address))
        return ObjectRef(interface.name, key, tuple(endpoints))

    def deactivate(self, key: str) -> None:
        """Remove a servant; subsequent calls get ObjectNotFound."""
        if key not in self._servants:
            raise ObjectNotFound(f"no servant with key {key!r} on {self.name}")
        del self._servants[key]
        self._dispatch_cache.clear()

    def register_interface(self, interface: InterfaceDef) -> None:
        """Make an interface resolvable by name (for stub construction)."""
        self._interfaces[interface.name] = interface

    # -- client side ------------------------------------------------------------

    def stub(
        self,
        ref: Union[ObjectRef, str],
        interface: Optional[InterfaceDef] = None,
    ) -> Stub:
        """Build a typed proxy for a reference (or stringified IOR)."""
        if isinstance(ref, str):
            ref = ObjectRef.from_string(ref)
        if interface is None:
            interface = self._interfaces.get(ref.interface)
            if interface is None:
                raise BadOperation(
                    f"interface {ref.interface!r} is not registered with "
                    f"{self.name}; pass it explicitly"
                )
        if interface.name != ref.interface:
            raise BadOperation(
                f"reference is for {ref.interface!r}, not {interface.name!r}"
            )
        return Stub(self, interface, ref)

    def add_client_interceptor(self, interceptor) -> None:
        """Observe outgoing requests: called with (ref, operation, args).

        Interceptors are the CORBA-style hook for tracing and accounting;
        they must not mutate the arguments.  Exceptions propagate to the
        caller (useful for policy enforcement in tests).
        """
        self._client_interceptors.append(interceptor)

    def add_server_interceptor(self, interceptor) -> None:
        """Observe dispatched requests: called with (key, operation, args)."""
        self._server_interceptors.append(interceptor)

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a span tracer to this ORB.

        With an active tracer, every invocation opens a client span and
        propagates its trace context in the request-header extension;
        every dispatched request carrying that extension opens a server
        span parented to the remote caller's span.
        """
        self._tracer = tracer

    def invoke(
        self,
        ref: ObjectRef,
        operation: Operation,
        args: tuple,
        _header: Optional[bytes] = None,
    ):
        """Marshal and send one request; unmarshal the reply.

        ``_header`` is the precomputed request-header encoding a
        :class:`Stub` caches per operation; without it the header is
        encoded here.
        """
        tracer = self._tracer
        if tracer is not None and tracer._active:
            return self._invoke_traced(ref, operation, args)
        if len(args) != len(operation.params):
            raise TypeError(
                f"{operation.name}() takes {len(operation.params)} "
                f"arguments ({len(args)} given)"
            )
        if self.fast_local:
            target = self._fast_target(ref)
            if target is not None:
                for interceptor in self._client_interceptors:
                    interceptor(ref, operation, args)
                return target.handle_request_direct(ref.key, operation, args)
        for interceptor in self._client_interceptors:
            interceptor(ref, operation, args)
        pooled = self.zero_copy_cdr
        enc = acquire_encoder() if pooled else CdrEncoder()
        if _header is not None:
            enc._buf.extend(_header)
        else:
            _REQUEST_HEADER.encode(
                enc, {"key": ref.key, "operation": operation.name}
            )
        for param, arg in zip(operation.params, args):
            param.idl_type.encode(enc, arg)
        payload = enc.getvalue()
        if pooled:
            release_encoder(enc)
        return self._transmit(ref, operation, payload)

    def _invoke_traced(self, ref: ObjectRef, operation: Operation, args: tuple):
        """Traced invoke: client span + trace-context header extension.

        The stub's cached header cannot be spliced here — its alignment
        padding assumes offset 0, and the extension shifts it — so the
        header strings are re-encoded after the context (the server
        reads plain strings either way).
        """
        if len(args) != len(operation.params):
            raise TypeError(
                f"{operation.name}() takes {len(operation.params)} "
                f"arguments ({len(args)} given)"
            )
        name = f"{ref.interface}.{operation.name}"
        with self._tracer.span(name, component=self.name,
                               kind="client") as span:
            for interceptor in self._client_interceptors:
                interceptor(ref, operation, args)
            enc = CdrEncoder()
            enc.write_string(_TRACE_KEY)
            enc.write_string(span.trace_id)
            enc.write_string(str(span.span_id))
            enc.write_string(ref.key)
            enc.write_string(operation.name)
            for param, arg in zip(operation.params, args):
                param.idl_type.encode(enc, arg)
            # Traced calls never batch: the span must cover delivery,
            # so the request goes out immediately (mirror of the fast
            # path's "traced calls always marshal" rule).
            return self._transmit(ref, operation, enc.getvalue(),
                                  batchable=False)

    def _transmit(self, ref: ObjectRef, operation: Operation, payload: bytes,
                  batchable: bool = True):
        """Wrap, route, send one encoded request; unmarshal the reply."""
        if self.credentials is not None:
            payload = self.credentials.wrap(payload)
        route = self._route_cache.get(ref.endpoints)
        if route is None:
            route = self._route(ref)
            self._route_cache[ref.endpoints] = route
        transport, address = route
        if self.batch_oneway:
            if (batchable and operation.oneway and self.credentials is None
                    and transport.peer_accepts_batch(address)):
                self._enqueue_oneway(transport, address, payload)
                return None
            if self._batch_queues:
                # Per-peer ordering barrier: anything queued for this
                # address is delivered before this request.
                self._flush_peer(transport, address)
        reply = transport.invoke(address, payload, operation.oneway)
        if operation.oneway:
            return None
        dec = CdrDecoder(reply)
        status = dec.read_octet()
        if status == _STATUS_OK:
            return operation.returns.decode(dec)
        exc_type = dec.read_string()
        message = dec.read_string()
        raise RemoteInvocationError(exc_type, message)

    # -- oneway batching --------------------------------------------------------

    def set_batch_notifier(self, callback) -> None:
        """Call ``callback(orb)`` whenever a oneway is queued; the grid
        registers one per ORB to drive event-boundary flushes."""
        self._batch_notify = callback

    def _enqueue_oneway(self, transport, address, payload: bytes) -> None:
        peer = (transport, address)
        queues = self._batch_queues
        queue = queues.get(peer)
        if queue is None:
            queue = queues[peer] = []
        queue.append(payload)
        pending = self._batch_pending_bytes.get(peer, 0) + len(payload) + 8
        self._batch_pending_bytes[peer] = pending
        if pending >= _BATCH_FLUSH_BYTES:
            self._flush_peer(transport, address)
            return
        notify = self._batch_notify
        if notify is not None:
            notify(self)

    def _flush_peer(self, transport, address) -> None:
        peer = (transport, address)
        queue = self._batch_queues.pop(peer, None)
        self._batch_pending_bytes.pop(peer, None)
        if queue:
            self._send_batch(transport, address, queue)

    def flush(self) -> None:
        """Send every queued oneway batch (a no-op when nothing is queued
        or batching is off).

        Queues are detached first, so requests enqueued *while* flushing
        (e.g. by servants dispatched over the in-process transport) land
        in fresh queues for the next flush.  If several peers fail, the
        first :class:`CommunicationError` is raised after every queue has
        been attempted.
        """
        queues = self._batch_queues
        if not queues:
            return
        self._batch_queues = {}
        self._batch_pending_bytes = {}
        error = None
        for (transport, address), payloads in queues.items():
            try:
                self._send_batch(transport, address, payloads)
            except CommunicationError as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def _send_batch(self, transport, address, payloads: list) -> None:
        count = len(payloads)
        self.batch_calls += count
        self.batch_frames += 1
        if count == 1:
            # A lone request needs no envelope; the wire carries exactly
            # what the per-call path would have sent.
            transport.invoke(address, payloads[0], True)
            return
        enc = acquire_encoder()
        enc.write_string(_BATCH_KEY)
        enc.write_ulong(count)
        for sub in payloads:
            enc.write_octets(sub)
        frame = enc.getvalue()
        release_encoder(enc)
        self.batch_bytes_saved += (count - 1) * _CALL_OVERHEAD_BYTES
        transport.invoke(address, frame, True)

    def _fast_target(self, ref: ObjectRef):
        """The peer ORB to dispatch to directly, or None to marshal.

        Eligibility is re-checked per call (one dict lookup) rather than
        cached: a shut-down peer drops out of the domain, so the call
        falls through to the marshalled path and fails with the same
        CommunicationError it always did.  Security short-circuits are
        conservative — any credentials on this side or auth requirement
        on the target keep the call on the enveloped wire path.
        """
        if self.credentials is not None:
            return None
        inproc = ref.endpoint_of_kind(INPROC)
        if inproc is None:
            return None
        target = self._inproc.peer(inproc[1])
        if target is None or not target.fast_local or target.require_auth:
            return None
        return target

    def _route(self, ref: ObjectRef):
        """Pick a transport shared with the servant (in-proc preferred)."""
        inproc = ref.endpoint_of_kind(INPROC)
        if inproc is not None and inproc[1] in self.domain:
            return self._inproc, inproc[1]
        tcp = ref.endpoint_of_kind(TCP)
        if tcp is not None and self._tcp is not None:
            return self._tcp, tcp[1]
        if tcp is not None:
            raise CommunicationError(
                f"{self.name} has no TCP transport to reach {tcp[1]}"
            )
        raise CommunicationError(
            f"no usable endpoint for {ref.interface}:{ref.key}"
        )

    # -- dispatch (called by transports) ----------------------------------------

    def handle_request_bytes(self, payload: bytes) -> bytes:
        """Unmarshal, dispatch to the servant, marshal the reply.

        When a keyring is configured, authenticated envelopes are
        verified (and stripped) first; with ``require_auth`` every
        unauthenticated request is rejected before dispatch.
        """
        self.requests_handled += 1
        enc = CdrEncoder()
        try:
            self.current_principal = None
            if self.keyring is not None:
                # Auth envelopes are inspected as bytes; zero-copy batch
                # sub-payloads arrive as memoryviews, so materialise.
                if not isinstance(payload, (bytes, bytearray)):
                    payload = bytes(payload)
                if is_authenticated(payload):
                    principal, payload = self.keyring.unwrap(payload)
                    self.current_principal = principal
                elif self.require_auth:
                    raise AuthenticationError(
                        "this ORB only accepts authenticated requests"
                    )
            elif self.require_auth:
                raise AuthenticationError(
                    "this ORB only accepts authenticated requests"
                )
            dec = CdrDecoder(payload, zero_copy=self.zero_copy_cdr)
            # The header is Struct{key: string, operation: string}; read the
            # two strings directly rather than through the Struct plan.
            key = dec.read_string()
            if key == _BATCH_KEY:
                # Oneway batch frame: dispatch each sub-request in order.
                # Every sub goes back through this method, so per-request
                # accounting, auth, and exception isolation behave as if
                # the requests had arrived one frame each; the envelope
                # itself is framing, not a request, hence the decrement.
                self.requests_handled -= 1
                count = dec.read_ulong()
                for _ in range(count):
                    self.handle_request_bytes(dec.read_octets())
                enc.write_octet(_STATUS_OK)
                return enc.getvalue()
            remote_parent = None
            if key == _TRACE_KEY:
                # Trace-context extension: consume it whether or not this
                # ORB traces, so a traced client can talk to any server.
                trace_id = dec.read_string()
                remote_parent = (trace_id, int(dec.read_string()))
                key = dec.read_string()
            op_name = dec.read_string()
            cached = self._dispatch_cache.get((key, op_name))
            if cached is None:
                entry = self._servants.get(key)
                if entry is None:
                    raise ObjectNotFound(f"no servant with key {key!r}")
                servant, interface = entry
                operation = interface.operation(op_name)
                cached = (getattr(servant, operation.name), operation)
                self._dispatch_cache[(key, op_name)] = cached
            method, operation = cached
            args = [p.idl_type.decode(dec) for p in operation.params]
            tracer = self._tracer
            if (remote_parent is not None and tracer is not None
                    and tracer._active):
                with tracer.span(f"{key}.{op_name}", parent=remote_parent,
                                 component=self.name, kind="server"):
                    for interceptor in self._server_interceptors:
                        interceptor(key, operation, args)
                    result = method(*args)
            else:
                for interceptor in self._server_interceptors:
                    interceptor(key, operation, args)
                result = method(*args)
            enc.write_octet(_STATUS_OK)
            operation.returns.encode(enc, result)
        except Exception as exc:   # marshalled back to the caller
            enc = CdrEncoder()
            enc.write_octet(_STATUS_EXCEPTION)
            enc.write_string(type(exc).__name__)
            enc.write_string(str(exc))
        return enc.getvalue()

    def handle_request_direct(self, key: str, operation: Operation, args: tuple):
        """Dispatch one co-located request without touching CDR.

        Observable behaviour mirrors :meth:`handle_request_bytes` +
        :meth:`_transmit` exactly: server interceptors see the argument
        list, servant exceptions surface as
        :class:`RemoteInvocationError` carrying the exception's type name
        and message, and oneway operations swallow both result and
        exceptions.  What is *not* replayed is the marshalling itself, so
        arguments and results cross by reference — callers must follow
        the same ownership discipline the wire's fresh-decode gave for
        free (the grid components already do: status dicts are handed
        over, never retained).
        """
        self.requests_handled += 1
        self.fast_local_calls += 1
        try:
            self.current_principal = None
            cached = self._dispatch_cache.get((key, operation.name))
            if cached is None:
                entry = self._servants.get(key)
                if entry is None:
                    raise ObjectNotFound(f"no servant with key {key!r}")
                servant, interface = entry
                bound_op = interface.operation(operation.name)
                cached = (getattr(servant, bound_op.name), bound_op)
                self._dispatch_cache[(key, operation.name)] = cached
            method, bound_op = cached
            arg_list = list(args)
            for interceptor in self._server_interceptors:
                interceptor(key, bound_op, arg_list)
            result = method(*arg_list)
        except Exception as exc:
            # The marshalled path encodes any servant-side exception and
            # the client re-raises it as RemoteInvocationError — or drops
            # it entirely for oneway calls.  Replicate both.
            if operation.oneway:
                return None
            raise RemoteInvocationError(type(exc).__name__, str(exc)) from exc
        return None if operation.oneway else result

    # -- lifecycle / metrics ------------------------------------------------------

    def inproc_stats(self):
        """The in-process transport's counters (server-side accounting)."""
        return self._inproc.stats

    @property
    def tcp_address(self) -> Optional[str]:
        return self._tcp.address if self._tcp is not None else None

    def stats(self) -> dict:
        """Aggregated transport statistics for this ORB."""
        totals = self._inproc.stats.snapshot()
        if self._tcp is not None:
            for key, value in self._tcp.stats.snapshot().items():
                totals[key] += value
        totals["requests_handled"] = self.requests_handled
        return totals

    def to_metrics(self, registry, prefix: str = None) -> None:
        """Publish :meth:`stats` as a registry view (evaluated at snapshot)."""
        registry.view(prefix if prefix else f"orb.{self.name}", self.stats)

    def shutdown(self) -> None:
        """Close transports and unregister from the domain.

        Queued oneway batches are flushed first; a peer that is already
        gone loses its queue (exactly what the per-call path would have
        hit, one CommunicationError at a time)."""
        if self._batch_queues:
            try:
                self.flush()
            except CommunicationError:
                pass
        self._inproc.close()
        if self._tcp is not None:
            self._tcp.close()
        self._servants.clear()

    def __repr__(self):
        return f"Orb({self.name!r}, servants={len(self._servants)})"
