"""ORB transports.

Two transports share one wire format (length-framed CDR payloads):

* **in-process** — delivers requests synchronously between ORBs in the
  same Python process via a registry ("domain").  This is what the grid
  simulator uses: calls are instantaneous in simulated time, but every
  message and byte is counted, so protocol-cost experiments stay honest.
* **TCP** — real sockets with a 4-byte big-endian length prefix, used by
  integration tests and the TCP microbenchmarks.

TCP framing comes in two flavours.  The legacy (default) framing carries
one flag byte (1 = reply expected) and serializes one request/reply
exchange per connection at a time.  A transport created with
``pipelined=True`` additionally *negotiates* correlation-id framing per
connection: the first request on a connection is a probe whose payload
is a request for the reserved ``"\x00pipe"`` object key.  A pipelined
server intercepts the probe and answers with an ack frame (carrying
capability flags, e.g. whether its ORB accepts oneway batch frames),
after which both sides switch that connection to correlation-id frames
and a per-connection reader thread demultiplexes replies — concurrent
invokes no longer serialize a full round-trip under ``_conn_locks``.  A
legacy server just dispatches the probe like any request and answers
with an ``ObjectNotFound`` error reply, which the client takes as
"speak legacy framing to this peer" — so mixed deployments work and
non-pipelined wires are byte-identical to before.
"""

import itertools
import socket
import struct
import threading
from typing import Optional

from repro.orb.cdr import CdrEncoder
from repro.orb.exceptions import CommunicationError

_FRAME_HEADER = struct.Struct(">I")
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- pipelined-framing constants --------------------------------------------

#: Reserved object key requested by the negotiation probe.  Servant keys
#: never start with NUL (same convention as the ORB's "\x00trace-ctx"
#: and "\x00batch" header extensions), so the probe can never collide
#: with a real object and a legacy server simply fails it with
#: ObjectNotFound.
PIPE_KEY = "\x00pipe"

#: Frame types used after a successful negotiation (legacy frames use
#: flag bytes 0x00/0x01 in the same position).
_FT_ONEWAY = 0x10    # [type][payload]            no reply
_FT_REQUEST = 0x11   # [type][corr-id:4][payload] reply expected
_FT_REPLY = 0x12     # [type][corr-id:4][payload]

_PIPE_ACK_MAGIC = b"\x00pipe-ack"
_ACK_PIPELINED = 0x01
_ACK_BATCH_OK = 0x02

#: How long a pipelined caller waits for its demultiplexed reply.
_REPLY_TIMEOUT_S = 30.0


def _build_probe() -> bytes:
    enc = CdrEncoder()
    enc.write_string(PIPE_KEY)
    enc.write_string("negotiate")
    return enc.getvalue()


_PIPE_PROBE = _build_probe()


class TransportStats:
    """Message and byte counters, kept per transport."""

    def __init__(self):
        self.requests_sent = 0
        self.replies_received = 0
        self.requests_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def snapshot(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "replies_received": self.replies_received,
            "requests_received": self.requests_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class InProcDomain:
    """A namespace of co-located ORBs that can call each other directly."""

    def __init__(self):
        self._orbs: dict[str, object] = {}

    def register(self, name: str, orb) -> None:
        if name in self._orbs:
            raise ValueError(f"an ORB named {name!r} is already registered")
        self._orbs[name] = orb

    def unregister(self, name: str) -> None:
        self._orbs.pop(name, None)

    def lookup(self, name: str):
        return self._orbs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._orbs


DEFAULT_DOMAIN = InProcDomain()


class InProcTransport:
    """Synchronous delivery between ORBs registered in the same domain."""

    kind = "inproc"

    def __init__(self, orb_name: str, domain: InProcDomain):
        self.orb_name = orb_name
        self.domain = domain
        self.stats = TransportStats()

    @property
    def address(self) -> str:
        return self.orb_name

    def peer(self, address: str):
        """The co-located ORB behind ``address``, or None.

        Routing hook for the ORB's opt-in zero-marshal fast path: the
        lookup goes through the transport (like :meth:`invoke` routing)
        but the dispatch bypasses framing and CDR entirely, so nothing
        is counted here — fast-path calls put no bytes on the wire.
        """
        return self.domain.lookup(address)

    def peer_accepts_batch(self, address: str) -> bool:
        """Does the ORB behind ``address`` accept oneway batch frames?

        Capability check for the ORB's opt-in oneway batching: both sides
        must opt in, so a non-batching (or auth-requiring) server is
        never sent a batch frame.  Re-checked per flush, like the fast
        path's eligibility — a shut-down peer just drops out.
        """
        target = self.domain.lookup(address)
        return target is not None and getattr(target, "accepts_batch", False)

    def invoke(self, address: str, payload: bytes, oneway: bool) -> Optional[bytes]:
        target = self.domain.lookup(address)
        if target is None:
            raise CommunicationError(f"no in-process ORB named {address!r}")
        self.stats.requests_sent += 1
        self.stats.bytes_sent += len(payload)
        server_stats = target.inproc_stats()
        server_stats.requests_received += 1
        server_stats.bytes_received += len(payload)
        reply = target.handle_request_bytes(payload)
        if oneway:
            return None
        server_stats.bytes_sent += len(reply)
        self.stats.replies_received += 1
        self.stats.bytes_received += len(reply)
        return reply

    def close(self) -> None:
        self.domain.unregister(self.orb_name)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise CommunicationError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME_BYTES:
        # Mirror of the receive-side check: fail fast client-side with a
        # clear error instead of poisoning the peer connection.
        raise CommunicationError(
            f"frame of {len(payload)} bytes exceeds limit"
        )
    sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _FRAME_HEADER.unpack(_recv_exact(sock, _FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise CommunicationError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


def _set_nodelay(sock: socket.socket) -> None:
    """Disable Nagle on a pipelined connection.

    Pipelined framing streams many small frames without intervening
    round-trips, exactly the pattern Nagle's algorithm stalls behind
    delayed ACKs.  The legacy request/reply path is left untouched — it
    self-clocks on replies, and the seed's socket setup stays as-is.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass   # non-TCP or platform without the option; purely advisory


class _PipelinedConn:
    """Client side of one correlation-id framed connection.

    ``pending`` maps correlation id -> ``[event, reply]``; the reader
    thread fills the reply slot and sets the event.  A reply slot left
    ``None`` after the event fires means the connection died.
    """

    __slots__ = ("sock", "send_lock", "pending", "pending_lock",
                 "batch_ok", "closed", "reader", "_ids")

    def __init__(self, sock: socket.socket, batch_ok: bool):
        self.sock = sock
        self.send_lock = threading.Lock()
        self.pending: dict[int, list] = {}
        self.pending_lock = threading.Lock()
        self.batch_ok = batch_ok
        self.closed = False
        self.reader: Optional[threading.Thread] = None
        self._ids = itertools.count(1)

    def next_corr(self) -> int:
        return next(self._ids) & 0xFFFFFFFF


class TcpTransport:
    """A real-socket transport: server thread plus cached client connections.

    Legacy frames carry one flag byte (1 = reply expected) before the
    CDR payload so oneway requests do not generate replies.  With
    ``pipelined=True`` each connection is upgraded — when the peer
    agrees — to correlation-id framing (see the module docstring); peers
    that do not agree keep the legacy framing, unchanged.
    """

    kind = "tcp"

    def __init__(self, orb, host: str = "127.0.0.1", port: int = 0,
                 pipelined: bool = False):
        self._orb = orb
        self.stats = TransportStats()
        self._pipelined = pipelined
        #: Malformed frames dropped by the serving loops (diagnostic;
        #: not part of TransportStats, whose key set is fixed).
        self.frames_rejected = 0
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._closing = False
        self._client_socks: dict[str, socket.socket] = {}
        self._client_lock = threading.Lock()
        # One lock per destination: a request/reply exchange must not
        # interleave with another thread's frames on the same connection.
        # (On a pipelined connection the lock only guards negotiation;
        # after that, sends interleave freely under the conn's send_lock.)
        self._conn_locks: dict[str, threading.Lock] = {}
        self._pipelined_conns: dict[str, _PipelinedConn] = {}
        # Peers that answered the probe with an error reply speak legacy
        # framing; remembered so the probe is sent once per peer.
        self._legacy_addrs: set[str] = set()
        self._server_conns: list[socket.socket] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"orb-tcp-{self.port}", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- server side ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return   # server socket closed
            self._server_conns.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                while not self._closing:
                    try:
                        frame = _recv_frame(conn)
                    except (CommunicationError, OSError):
                        return
                    if not frame:
                        # A zero-length frame has no flag byte; drop it
                        # and keep serving instead of letting IndexError
                        # silently kill this thread.
                        self.frames_rejected += 1
                        continue
                    expects_reply = frame[0] == 1
                    payload = frame[1:]
                    if (self._pipelined and expects_reply
                            and payload == _PIPE_PROBE):
                        # Framing negotiation: ack (with capability
                        # flags) and upgrade this connection.  Control
                        # traffic stays out of the request counters.
                        try:
                            _send_frame(conn, self._ack_payload())
                        except OSError:
                            return
                        self._serve_pipelined(conn)
                        return
                    self.stats.requests_received += 1
                    self.stats.bytes_received += len(payload)
                    reply = self._orb.handle_request_bytes(payload)
                    if expects_reply:
                        try:
                            _send_frame(conn, reply)
                            self.stats.bytes_sent += len(reply)
                        except OSError:
                            return
        finally:
            # Prune: a transport otherwise accumulates one dead socket
            # per connection ever accepted, for its whole lifetime.
            try:
                self._server_conns.remove(conn)
            except ValueError:
                pass

    def _ack_payload(self) -> bytes:
        flags = _ACK_PIPELINED
        if getattr(self._orb, "accepts_batch", False):
            flags |= _ACK_BATCH_OK
        return _PIPE_ACK_MAGIC + bytes((flags,))

    def _serve_pipelined(self, conn: socket.socket) -> None:
        """Serve correlation-id frames: requests are dispatched in arrival
        order, but the client never waits a round-trip between sends."""
        _set_nodelay(conn)
        send_lock = threading.Lock()
        handle = self._orb.handle_request_bytes
        while not self._closing:
            try:
                frame = _recv_frame(conn)
            except (CommunicationError, OSError):
                return
            if not frame:
                self.frames_rejected += 1
                continue
            ftype = frame[0]
            if ftype == _FT_ONEWAY:
                payload = memoryview(frame)[1:]
                self.stats.requests_received += 1
                self.stats.bytes_received += len(payload)
                handle(payload)
            elif ftype == _FT_REQUEST and len(frame) >= 5:
                corr = frame[1:5]
                payload = memoryview(frame)[5:]
                self.stats.requests_received += 1
                self.stats.bytes_received += len(payload)
                reply = handle(payload)
                try:
                    with send_lock:
                        _send_frame(
                            conn, bytes((_FT_REPLY,)) + corr + reply
                        )
                    self.stats.bytes_sent += len(reply)
                except (OSError, CommunicationError):
                    return
            else:
                self.frames_rejected += 1

    # -- client side ---------------------------------------------------------

    def _connection_to(self, address: str) -> socket.socket:
        with self._client_lock:
            sock = self._client_socks.get(address)
            if sock is None:
                host, _, port = address.rpartition(":")
                try:
                    sock = socket.create_connection((host, int(port)), timeout=10)
                except OSError as exc:
                    raise CommunicationError(
                        f"cannot connect to {address}: {exc}"
                    ) from exc
                self._client_socks[address] = sock
            return sock

    def _drop_connection(self, address: str) -> None:
        with self._client_lock:
            sock = self._client_socks.pop(address, None)
            # Drop the per-address lock with the socket: otherwise the
            # lock table grows by one entry per address ever contacted.
            self._conn_locks.pop(address, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- pipelined client path -----------------------------------------------

    def _negotiate(self, address: str) -> Optional[_PipelinedConn]:
        """Probe ``address`` for pipelined framing (caller holds the
        per-address lock).  Returns the upgraded connection, or None when
        the peer answered like a legacy server."""
        sock = self._connection_to(address)
        try:
            _send_frame(sock, b"\x01" + _PIPE_PROBE)
            reply = _recv_frame(sock)
        except (OSError, CommunicationError) as exc:
            self._drop_connection(address)
            raise CommunicationError(
                f"invoke on {address} failed: {exc}"
            ) from exc
        if not reply.startswith(_PIPE_ACK_MAGIC):
            # A legacy server dispatched the probe and sent back an
            # ObjectNotFound error reply: speak legacy framing to it.
            self._legacy_addrs.add(address)
            return None
        flags = reply[len(_PIPE_ACK_MAGIC)] if len(reply) > len(_PIPE_ACK_MAGIC) else 0
        # The pipelined conn owns the socket from here on; the reader
        # blocks indefinitely (reply timeouts are enforced per waiter).
        with self._client_lock:
            self._client_socks.pop(address, None)
        sock.settimeout(None)
        _set_nodelay(sock)
        conn = _PipelinedConn(sock, batch_ok=bool(flags & _ACK_BATCH_OK))
        conn.reader = threading.Thread(
            target=self._reader_loop, args=(conn,),
            name=f"orb-tcp-reader-{address}", daemon=True,
        )
        conn.reader.start()
        self._pipelined_conns[address] = conn
        return conn

    def _reader_loop(self, conn: _PipelinedConn) -> None:
        """Demultiplex reply frames to their waiting callers."""
        try:
            while True:
                frame = _recv_frame(conn.sock)
                if len(frame) >= 5 and frame[0] == _FT_REPLY:
                    corr = int.from_bytes(frame[1:5], "big")
                    with conn.pending_lock:
                        waiter = conn.pending.pop(corr, None)
                    if waiter is not None:
                        waiter[1] = frame[5:]
                        waiter[0].set()
        except (OSError, CommunicationError):
            pass
        finally:
            conn.closed = True
            with conn.pending_lock:
                waiters = list(conn.pending.values())
                conn.pending.clear()
            for waiter in waiters:
                waiter[0].set()   # reply slot stays None -> error
            try:
                conn.sock.close()
            except OSError:
                pass

    def _pipelined_conn(self, address: str) -> Optional[_PipelinedConn]:
        """The live upgraded connection for ``address``, negotiating on
        first use; None when the peer speaks legacy framing."""
        conn = self._pipelined_conns.get(address)
        if conn is not None and not conn.closed:
            return conn
        with self._client_lock:
            lock = self._conn_locks.setdefault(address, threading.Lock())
        with lock:
            conn = self._pipelined_conns.get(address)
            if conn is not None:
                if not conn.closed:
                    return conn
                self._pipelined_conns.pop(address, None)
            if address in self._legacy_addrs:
                return None
            return self._negotiate(address)

    def _drop_pipelined(self, address: str, conn: _PipelinedConn) -> None:
        conn.closed = True
        try:
            conn.sock.close()   # wakes the reader, which fails waiters
        except OSError:
            pass
        if self._pipelined_conns.get(address) is conn:
            self._pipelined_conns.pop(address, None)

    def _invoke_pipelined(
        self, conn: _PipelinedConn, address: str, payload: bytes, oneway: bool
    ) -> Optional[bytes]:
        if oneway:
            try:
                with conn.send_lock:
                    _send_frame(conn.sock, bytes((_FT_ONEWAY,)) + payload)
            except (OSError, CommunicationError) as exc:
                self._drop_pipelined(address, conn)
                raise CommunicationError(
                    f"invoke on {address} failed: {exc}"
                ) from exc
            self.stats.requests_sent += 1
            self.stats.bytes_sent += len(payload)
            return None
        corr = conn.next_corr()
        waiter = [threading.Event(), None]
        with conn.pending_lock:
            conn.pending[corr] = waiter
        header = bytes((_FT_REQUEST,)) + corr.to_bytes(4, "big")
        try:
            with conn.send_lock:
                _send_frame(conn.sock, header + payload)
        except (OSError, CommunicationError) as exc:
            with conn.pending_lock:
                conn.pending.pop(corr, None)
            self._drop_pipelined(address, conn)
            raise CommunicationError(
                f"invoke on {address} failed: {exc}"
            ) from exc
        self.stats.requests_sent += 1
        self.stats.bytes_sent += len(payload)
        if not waiter[0].wait(_REPLY_TIMEOUT_S):
            with conn.pending_lock:
                conn.pending.pop(corr, None)
            self._drop_pipelined(address, conn)
            raise CommunicationError(f"invoke on {address} timed out")
        reply = waiter[1]
        if reply is None:
            raise CommunicationError(
                f"invoke on {address} failed: connection lost"
            )
        self.stats.replies_received += 1
        self.stats.bytes_received += len(reply)
        return reply

    def peer_accepts_batch(self, address: str) -> bool:
        """Does the ORB behind ``address`` accept oneway batch frames?

        Only knowable — and only true — on a pipelined connection, whose
        negotiation ack carries the server's capability flags.
        """
        if not self._pipelined or self._closing:
            return False
        try:
            conn = self._pipelined_conn(address)
        except CommunicationError:
            return False
        return conn is not None and conn.batch_ok

    def invoke(self, address: str, payload: bytes, oneway: bool) -> Optional[bytes]:
        if self._pipelined and address not in self._legacy_addrs:
            conn = self._pipelined_conn(address)
            if conn is not None:
                return self._invoke_pipelined(conn, address, payload, oneway)
        with self._client_lock:
            lock = self._conn_locks.setdefault(address, threading.Lock())
        flag = b"\x00" if oneway else b"\x01"
        with lock:
            sock = self._connection_to(address)
            try:
                _send_frame(sock, flag + payload)
                self.stats.requests_sent += 1
                self.stats.bytes_sent += len(payload)
                if oneway:
                    return None
                reply = _recv_frame(sock)
            except (OSError, CommunicationError) as exc:
                self._drop_connection(address)
                raise CommunicationError(
                    f"invoke on {address} failed: {exc}"
                ) from exc
        self.stats.replies_received += 1
        self.stats.bytes_received += len(reply)
        return reply

    def close(self) -> None:
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass
        for conn in list(self._server_conns):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._server_conns.clear()
        for address, conn in list(self._pipelined_conns.items()):
            self._drop_pipelined(address, conn)
        with self._client_lock:
            for sock in self._client_socks.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._client_socks.clear()
            self._conn_locks.clear()
