"""ORB transports.

Two transports share one wire format (length-framed CDR payloads):

* **in-process** — delivers requests synchronously between ORBs in the
  same Python process via a registry ("domain").  This is what the grid
  simulator uses: calls are instantaneous in simulated time, but every
  message and byte is counted, so protocol-cost experiments stay honest.
* **TCP** — real sockets with a 4-byte big-endian length prefix, used by
  integration tests and the TCP microbenchmarks.
"""

import socket
import struct
import threading
from typing import Optional

from repro.orb.exceptions import CommunicationError

_FRAME_HEADER = struct.Struct(">I")
MAX_FRAME_BYTES = 64 * 1024 * 1024


class TransportStats:
    """Message and byte counters, kept per transport."""

    def __init__(self):
        self.requests_sent = 0
        self.replies_received = 0
        self.requests_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def snapshot(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "replies_received": self.replies_received,
            "requests_received": self.requests_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class InProcDomain:
    """A namespace of co-located ORBs that can call each other directly."""

    def __init__(self):
        self._orbs: dict[str, object] = {}

    def register(self, name: str, orb) -> None:
        if name in self._orbs:
            raise ValueError(f"an ORB named {name!r} is already registered")
        self._orbs[name] = orb

    def unregister(self, name: str) -> None:
        self._orbs.pop(name, None)

    def lookup(self, name: str):
        return self._orbs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._orbs


DEFAULT_DOMAIN = InProcDomain()


class InProcTransport:
    """Synchronous delivery between ORBs registered in the same domain."""

    kind = "inproc"

    def __init__(self, orb_name: str, domain: InProcDomain):
        self.orb_name = orb_name
        self.domain = domain
        self.stats = TransportStats()

    @property
    def address(self) -> str:
        return self.orb_name

    def peer(self, address: str):
        """The co-located ORB behind ``address``, or None.

        Routing hook for the ORB's opt-in zero-marshal fast path: the
        lookup goes through the transport (like :meth:`invoke` routing)
        but the dispatch bypasses framing and CDR entirely, so nothing
        is counted here — fast-path calls put no bytes on the wire.
        """
        return self.domain.lookup(address)

    def invoke(self, address: str, payload: bytes, oneway: bool) -> Optional[bytes]:
        target = self.domain.lookup(address)
        if target is None:
            raise CommunicationError(f"no in-process ORB named {address!r}")
        self.stats.requests_sent += 1
        self.stats.bytes_sent += len(payload)
        server_stats = target.inproc_stats()
        server_stats.requests_received += 1
        server_stats.bytes_received += len(payload)
        reply = target.handle_request_bytes(payload)
        if oneway:
            return None
        server_stats.bytes_sent += len(reply)
        self.stats.replies_received += 1
        self.stats.bytes_received += len(reply)
        return reply

    def close(self) -> None:
        self.domain.unregister(self.orb_name)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise CommunicationError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _FRAME_HEADER.unpack(_recv_exact(sock, _FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise CommunicationError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


class TcpTransport:
    """A real-socket transport: server thread plus cached client connections.

    Frames carry one flag byte (1 = reply expected) before the CDR payload
    so oneway requests do not generate replies.
    """

    kind = "tcp"

    def __init__(self, orb, host: str = "127.0.0.1", port: int = 0):
        self._orb = orb
        self.stats = TransportStats()
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._closing = False
        self._client_socks: dict[str, socket.socket] = {}
        self._client_lock = threading.Lock()
        # One lock per destination: a request/reply exchange must not
        # interleave with another thread's frames on the same connection.
        self._conn_locks: dict[str, threading.Lock] = {}
        self._server_conns: list[socket.socket] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"orb-tcp-{self.port}", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- server side ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return   # server socket closed
            self._server_conns.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._closing:
                try:
                    frame = _recv_frame(conn)
                except (CommunicationError, OSError):
                    return
                expects_reply = frame[0] == 1
                payload = frame[1:]
                self.stats.requests_received += 1
                self.stats.bytes_received += len(payload)
                reply = self._orb.handle_request_bytes(payload)
                if expects_reply:
                    try:
                        _send_frame(conn, reply)
                        self.stats.bytes_sent += len(reply)
                    except OSError:
                        return

    # -- client side ---------------------------------------------------------

    def _connection_to(self, address: str) -> socket.socket:
        with self._client_lock:
            sock = self._client_socks.get(address)
            if sock is None:
                host, _, port = address.rpartition(":")
                try:
                    sock = socket.create_connection((host, int(port)), timeout=10)
                except OSError as exc:
                    raise CommunicationError(
                        f"cannot connect to {address}: {exc}"
                    ) from exc
                self._client_socks[address] = sock
            return sock

    def _drop_connection(self, address: str) -> None:
        with self._client_lock:
            sock = self._client_socks.pop(address, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def invoke(self, address: str, payload: bytes, oneway: bool) -> Optional[bytes]:
        with self._client_lock:
            lock = self._conn_locks.setdefault(address, threading.Lock())
        flag = b"\x00" if oneway else b"\x01"
        with lock:
            sock = self._connection_to(address)
            try:
                _send_frame(sock, flag + payload)
                self.stats.requests_sent += 1
                self.stats.bytes_sent += len(payload)
                if oneway:
                    return None
                reply = _recv_frame(sock)
            except (OSError, CommunicationError) as exc:
                self._drop_connection(address)
                raise CommunicationError(
                    f"invoke on {address} failed: {exc}"
                ) from exc
        self.stats.replies_received += 1
        self.stats.bytes_received += len(reply)
        return reply

    def close(self) -> None:
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass
        for conn in self._server_conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._server_conns.clear()
        with self._client_lock:
            for sock in self._client_socks.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._client_socks.clear()
