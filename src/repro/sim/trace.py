"""Owner-activity trace recording and replay.

Section 5: "We also started to collect information about node's usage
in order to develop node usage patterns."  This module supports that
workflow: record a workstation's owner activity to a portable text
format, then replay it on a :class:`TraceWorkstation` — so experiments
can run against captured (or hand-written) traces instead of the
synthetic Markov model, with identical middleware behaviour.

Trace format (one event per line, '#' comments allowed)::

    # time_s present cpu_fraction mem_mb
    0.0      0       0.0          0.0
    28800.0  1       0.55         96.0
    ...

Events are step functions: each line holds until the next one.
"""

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.sim.events import EventLoop
from repro.sim.machine import Machine, MachineSpec


@dataclass(frozen=True)
class TraceEvent:
    """One step of owner state."""

    time: float
    present: bool
    cpu_fraction: float
    mem_mb: float

    def __post_init__(self):
        if self.time < 0:
            raise ValueError("trace times must be >= 0")
        if not 0.0 <= self.cpu_fraction <= 1.0:
            raise ValueError(f"cpu_fraction out of range: {self.cpu_fraction}")
        if self.mem_mb < 0:
            raise ValueError("mem_mb must be >= 0")


def dump_trace(events: Iterable[TraceEvent]) -> str:
    """Render events to the portable text format."""
    lines = ["# time_s present cpu_fraction mem_mb"]
    for event in events:
        lines.append(
            f"{event.time:.1f} {int(event.present)} "
            f"{event.cpu_fraction:.4f} {event.mem_mb:.1f}"
        )
    return "\n".join(lines) + "\n"


def parse_trace(text: str) -> list:
    """Parse the text format; validates ordering and values."""
    events = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(
                f"line {lineno}: expected 4 fields, got {len(parts)}"
            )
        event = TraceEvent(
            time=float(parts[0]),
            present=bool(int(parts[1])),
            cpu_fraction=float(parts[2]),
            mem_mb=float(parts[3]),
        )
        if events and event.time <= events[-1].time:
            raise ValueError(f"line {lineno}: times must strictly increase")
        events.append(event)
    return events


class TraceRecorder:
    """Records a workstation's owner transitions into TraceEvents."""

    def __init__(self, workstation, sample_interval: float = 300.0):
        self._workstation = workstation
        self.events: list = []
        self._last: Optional[tuple] = None
        self._task = workstation.loop.every(
            sample_interval, self._sample, start_after=0.0
        )

    def _sample(self) -> None:
        machine = self._workstation.machine
        state = (
            self._workstation.owner_present,
            round(machine.owner_cpu, 4),
            round(machine.owner_mem_mb, 1),
        )
        if state == self._last:
            return
        self._last = state
        self.events.append(TraceEvent(
            time=self._workstation.loop.now,
            present=state[0],
            cpu_fraction=state[1],
            mem_mb=state[2],
        ))

    def stop(self) -> None:
        self._task.stop()

    def dump(self) -> str:
        return dump_trace(self.events)


class TraceWorkstation:
    """A workstation whose owner follows a recorded trace.

    API-compatible with :class:`~repro.sim.workstation.Workstation` for
    everything the LRM and LUPA use (machine, owner_present,
    on_owner_change, stop); ``true_mean_presence`` is not available
    since a trace has no generating distribution.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        events: list,
        spec: Optional[MachineSpec] = None,
        loop_trace: bool = False,
    ):
        if not events:
            raise ValueError("a trace needs at least one event")
        self.loop = loop
        self.machine = Machine(name, spec)
        self._events = list(events)
        self._loop_trace = loop_trace
        self._trace_span = self._events[-1].time + 1.0
        self._index = 0
        self._offset = 0.0
        self._present = False
        self._listeners: list[Callable] = []
        self._stopped = False
        self._apply(self._events[0])
        self._index = 1
        self._schedule_next()

    @property
    def name(self) -> str:
        return self.machine.name

    @property
    def owner_present(self) -> bool:
        return self._present

    def on_owner_change(self, listener: Callable) -> None:
        self._listeners.append(listener)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        if self._index >= len(self._events):
            if not self._loop_trace:
                return
            self._offset += self._trace_span
            self._index = 0
        event = self._events[self._index]
        when = self._offset + event.time
        if when <= self.loop.now:
            when = self.loop.now
        self.loop.schedule_at(max(when, self.loop.now), self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        event = self._events[self._index]
        self._index += 1
        was_present = self._present
        self._apply(event)
        if was_present != self._present:
            for listener in self._listeners:
                listener(self._present)
        self._schedule_next()

    def _apply(self, event: TraceEvent) -> None:
        self._present = event.present
        mem = min(event.mem_mb, self.machine.spec.ram_mb)
        self.machine.set_owner_load(event.cpu_fraction, mem, event.present)
