"""Hardware model of a desktop machine.

A :class:`Machine` tracks two classes of load: the *owner's* (set by the
workstation activity model) and the *grid's* (set by the Local Resource
Manager when it launches tasks).  The machine itself enforces capacity
only; sharing *policy* lives in the Node Control Center.
"""

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class MachineSpec:
    """Static hardware description of a node.

    ``mips`` follows the paper's own resource vocabulary ("a CPU of at
    least 500 MIPS").
    """

    mips: float = 1000.0
    ram_mb: float = 256.0
    disk_mb: float = 10_000.0
    net_mbps: float = 100.0
    os: str = "linux"
    arch: str = "x86"

    def __post_init__(self):
        if self.mips <= 0:
            raise ValueError(f"mips must be positive, got {self.mips}")
        if self.ram_mb <= 0:
            raise ValueError(f"ram_mb must be positive, got {self.ram_mb}")
        if self.disk_mb < 0:
            raise ValueError(f"disk_mb must be >= 0, got {self.disk_mb}")
        if self.net_mbps <= 0:
            raise ValueError(f"net_mbps must be positive, got {self.net_mbps}")


@dataclass(frozen=True)
class ResourceSample:
    """An instantaneous usage snapshot, as the LRM reports to the GRM."""

    time: float
    cpu_total: float          # fraction of CPU busy, 0..1
    cpu_owner: float          # owner's share of that
    cpu_grid: float           # grid's share of that
    mem_used_mb: float
    mem_owner_mb: float
    mem_grid_mb: float
    disk_used_mb: float
    net_owner_mbps: float     # the owner's current network traffic
    keyboard_active: bool

    @property
    def cpu_free(self) -> float:
        """Fraction of CPU not in use by anyone."""
        return max(0.0, 1.0 - self.cpu_total)


class InsufficientResources(Exception):
    """Raised when a grid allocation would exceed machine capacity."""


@dataclass
class _GridAllocation:
    cpu_fraction: float
    mem_mb: float
    disk_mb: float = 0.0


OWNER_FIRST = "owner_first"
FAIR_SHARE = "fair_share"


class Machine:
    """A desktop machine with owner and grid load accounting.

    ``scheduling`` selects how CPU contention resolves:

    * ``owner_first`` (InteGrade's careful user-level control): the owner
      always receives everything they ask for; grid tasks share what is
      left.
    * ``fair_share`` (a naive harvester running grid work at normal
      priority): when oversubscribed, owner and grid shrink
      proportionally — the owner *perceives* the grid.  Used by the
      owner-QoS experiment as the contrast case.
    """

    def __init__(
        self,
        name: str,
        spec: Optional[MachineSpec] = None,
        scheduling: str = OWNER_FIRST,
    ):
        if scheduling not in (OWNER_FIRST, FAIR_SHARE):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        self.name = name
        self.spec = spec if spec is not None else MachineSpec()
        self.scheduling = scheduling
        self._owner_cpu = 0.0
        self._owner_mem_mb = 0.0
        self._owner_net_mbps = 0.0
        self._keyboard_active = False
        self._disk_used_mb = 0.0
        self._allocations: dict[str, _GridAllocation] = {}

    # -- owner side --------------------------------------------------------

    def set_owner_load(
        self,
        cpu_fraction: float,
        mem_mb: float,
        keyboard_active: bool,
        net_mbps: float = 0.0,
    ) -> None:
        """Update the owner's current resource consumption.

        Called by the workstation activity model; owner load is never
        rejected — the owner always wins over the grid.
        """
        if not 0.0 <= cpu_fraction <= 1.0:
            raise ValueError(f"cpu_fraction out of range: {cpu_fraction}")
        if mem_mb < 0 or mem_mb > self.spec.ram_mb:
            raise ValueError(f"owner memory out of range: {mem_mb}")
        if net_mbps < 0:
            raise ValueError(f"owner network traffic out of range: {net_mbps}")
        self._owner_cpu = cpu_fraction
        self._owner_mem_mb = mem_mb
        self._keyboard_active = keyboard_active
        self._owner_net_mbps = min(net_mbps, self.spec.net_mbps)

    @property
    def owner_cpu(self) -> float:
        return self._owner_cpu

    @property
    def owner_mem_mb(self) -> float:
        return self._owner_mem_mb

    @property
    def owner_net_mbps(self) -> float:
        return self._owner_net_mbps

    def net_free_mbps(self) -> float:
        """Network headroom left after the owner's traffic."""
        return max(0.0, self.spec.net_mbps - self._owner_net_mbps)

    @property
    def keyboard_active(self) -> bool:
        return self._keyboard_active

    @property
    def disk_used_mb(self) -> float:
        """Disk currently claimed by grid task allocations."""
        return self._disk_used_mb

    # -- grid side -----------------------------------------------------------

    @property
    def grid_cpu(self) -> float:
        """Total CPU fraction currently allocated to grid tasks."""
        return sum(a.cpu_fraction for a in self._allocations.values())

    @property
    def grid_mem_mb(self) -> float:
        """Total memory currently allocated to grid tasks."""
        return sum(a.mem_mb for a in self._allocations.values())

    @property
    def grid_task_ids(self) -> list[str]:
        return list(self._allocations)

    def cpu_available_for_grid(self, cap: float = 1.0) -> float:
        """CPU fraction the grid could still claim, under a policy ``cap``.

        The cap is the NCC's share limit (e.g. 0.3 for "30% of the CPU");
        owner load further reduces what is actually free.
        """
        free = max(0.0, 1.0 - self._owner_cpu)
        headroom = max(0.0, cap - self.grid_cpu)
        return min(free, headroom)

    def mem_available_for_grid(self, cap_mb: Optional[float] = None) -> float:
        """Memory the grid could still claim, under an optional byte cap."""
        free = max(0.0, self.spec.ram_mb - self._owner_mem_mb - self.grid_mem_mb)
        if cap_mb is None:
            return free
        headroom = max(0.0, cap_mb - self.grid_mem_mb)
        return min(free, headroom)

    def allocate(
        self,
        task_id: str,
        cpu_fraction: float,
        mem_mb: float,
        disk_mb: float = 0.0,
    ) -> None:
        """Claim resources for a grid task, or raise InsufficientResources."""
        if task_id in self._allocations:
            raise ValueError(f"task {task_id!r} already allocated on {self.name}")
        if cpu_fraction <= 0:
            raise ValueError("cpu_fraction must be positive")
        if cpu_fraction > self.cpu_available_for_grid(cap=1.0) + 1e-9:
            raise InsufficientResources(
                f"{self.name}: need cpu {cpu_fraction:.2f}, "
                f"have {self.cpu_available_for_grid(cap=1.0):.2f}"
            )
        if mem_mb > self.mem_available_for_grid() + 1e-9:
            raise InsufficientResources(
                f"{self.name}: need {mem_mb} MB, "
                f"have {self.mem_available_for_grid():.1f} MB"
            )
        free_disk = self.spec.disk_mb - self._disk_used_mb
        if disk_mb > free_disk + 1e-9:
            raise InsufficientResources(
                f"{self.name}: need {disk_mb} MB disk, have {free_disk:.1f} MB"
            )
        self._allocations[task_id] = _GridAllocation(cpu_fraction, mem_mb, disk_mb)
        self._disk_used_mb += disk_mb

    def release(self, task_id: str) -> None:
        """Release the resources held by a grid task."""
        alloc = self._allocations.pop(task_id, None)
        if alloc is None:
            raise KeyError(f"no allocation for task {task_id!r} on {self.name}")
        self._disk_used_mb -= alloc.disk_mb

    def _contention(self) -> tuple:
        """(owner_scale, grid_scale) under the current scheduling mode."""
        grid_total = self.grid_cpu
        demand = self._owner_cpu + grid_total
        if self.scheduling == FAIR_SHARE:
            if demand <= 1.0:
                return 1.0, 1.0
            return 1.0 / demand, 1.0 / demand
        # owner_first: the owner is untouched; the grid gets the rest.
        if grid_total <= 0:
            return 1.0, 0.0
        available = max(0.0, 1.0 - self._owner_cpu)
        return 1.0, min(1.0, available / grid_total)

    def owner_received_cpu(self) -> float:
        """CPU fraction the owner actually receives right now."""
        owner_scale, _ = self._contention()
        return self._owner_cpu * owner_scale

    def grid_task_rate_mips(self, task_id: str) -> float:
        """Effective MIPS the named grid task receives right now.

        Under ``owner_first`` the owner takes absolute priority and the
        grid shares the remainder; under ``fair_share`` an oversubscribed
        CPU shrinks everyone proportionally.
        """
        alloc = self._allocations.get(task_id)
        if alloc is None:
            raise KeyError(f"no allocation for task {task_id!r} on {self.name}")
        if self.grid_cpu <= 0:
            return 0.0
        _, grid_scale = self._contention()
        return self.spec.mips * alloc.cpu_fraction * grid_scale

    # -- measurement ---------------------------------------------------------

    def sample(self, now: float) -> ResourceSample:
        """Take the usage snapshot the LRM periodically reports."""
        owner = self._owner_cpu
        grid = min(self.grid_cpu, max(0.0, 1.0 - owner))
        return ResourceSample(
            time=now,
            cpu_total=min(1.0, owner + grid),
            cpu_owner=owner,
            cpu_grid=grid,
            mem_used_mb=self._owner_mem_mb + self.grid_mem_mb,
            mem_owner_mb=self._owner_mem_mb,
            mem_grid_mb=self.grid_mem_mb,
            disk_used_mb=self._disk_used_mb,
            net_owner_mbps=self._owner_net_mbps,
            keyboard_active=self._keyboard_active,
        )

    def __repr__(self) -> str:
        return (
            f"Machine({self.name!r}, {self.spec.mips:.0f} MIPS, "
            f"owner_cpu={self._owner_cpu:.2f}, grid_cpu={self.grid_cpu:.2f})"
        )
