"""Network topology model.

The paper's requirements include scheduling on "the kind of network
connection available in each part of the grid" — e.g. the request
"two groups of 50 nodes, each group connected internally by a 100 Mbps
network and the two groups connected by a 10 Mbps network".  This module
models exactly that: LAN segments with internal bandwidth/latency, linked
into a graph.
"""

from collections import deque
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Link:
    """A point-to-point or segment-internal link."""

    bandwidth_mbps: float
    latency_ms: float = 1.0

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_ms < 0:
            raise ValueError("latency must be >= 0")

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across this link."""
        bits = nbytes * 8
        return self.latency_ms / 1000.0 + bits / (self.bandwidth_mbps * 1e6)


@dataclass
class LanSegment:
    """A broadcast domain: every member pair shares the internal link."""

    name: str
    internal: Link

    def __hash__(self):
        return hash(self.name)


class NetworkTopology:
    """Segments, their members, and inter-segment links."""

    def __init__(self):
        self._segments: dict[str, LanSegment] = {}
        self._members: dict[str, str] = {}          # node -> segment name
        self._edges: dict[str, dict[str, Link]] = {}  # segment adjacency

    # -- construction -------------------------------------------------------

    def add_segment(
        self, name: str, bandwidth_mbps: float = 100.0, latency_ms: float = 1.0
    ) -> LanSegment:
        """Create a LAN segment."""
        if name in self._segments:
            raise ValueError(f"segment {name!r} already exists")
        seg = LanSegment(name, Link(bandwidth_mbps, latency_ms))
        self._segments[name] = seg
        self._edges[name] = {}
        return seg

    def connect(
        self,
        seg_a: str,
        seg_b: str,
        bandwidth_mbps: float,
        latency_ms: float = 5.0,
    ) -> None:
        """Join two segments with an inter-segment link."""
        for s in (seg_a, seg_b):
            if s not in self._segments:
                raise KeyError(f"unknown segment {s!r}")
        if seg_a == seg_b:
            raise ValueError("cannot connect a segment to itself")
        link = Link(bandwidth_mbps, latency_ms)
        self._edges[seg_a][seg_b] = link
        self._edges[seg_b][seg_a] = link

    def place(self, node: str, segment: str) -> None:
        """Attach a node to a segment."""
        if segment not in self._segments:
            raise KeyError(f"unknown segment {segment!r}")
        self._members[node] = segment

    # -- queries ---------------------------------------------------------------

    @property
    def segments(self) -> list[str]:
        return list(self._segments)

    def segment_internal(self, segment: str) -> Link:
        """The internal link of a segment."""
        try:
            return self._segments[segment].internal
        except KeyError:
            raise KeyError(f"unknown segment {segment!r}") from None

    def segment_of(self, node: str) -> str:
        """The segment a node is attached to."""
        try:
            return self._members[node]
        except KeyError:
            raise KeyError(f"node {node!r} is not placed on the network") from None

    def nodes_in(self, segment: str) -> list[str]:
        """All nodes attached to ``segment``."""
        return [n for n, s in self._members.items() if s == segment]

    def path_between(self, node_a: str, node_b: str) -> Optional[list[str]]:
        """Shortest segment path (by hop count), or None if disconnected."""
        start = self.segment_of(node_a)
        goal = self.segment_of(node_b)
        if start == goal:
            return [start]
        prev: dict[str, Optional[str]] = {start: None}
        queue = deque([start])
        while queue:
            cur = queue.popleft()
            for nxt in self._edges[cur]:
                if nxt in prev:
                    continue
                prev[nxt] = cur
                if nxt == goal:
                    path = [goal]
                    while prev[path[-1]] is not None:
                        path.append(prev[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return None

    def link_between(self, node_a: str, node_b: str) -> Optional[Link]:
        """The effective link between two nodes.

        Bandwidth is the minimum along the path (the bottleneck); latency
        is the sum of per-hop latencies plus both segments' internal ones.
        """
        path = self.path_between(node_a, node_b)
        if path is None:
            return None
        if len(path) == 1:
            return self._segments[path[0]].internal
        bandwidth = min(
            self._segments[path[0]].internal.bandwidth_mbps,
            self._segments[path[-1]].internal.bandwidth_mbps,
        )
        latency = (
            self._segments[path[0]].internal.latency_ms
            + self._segments[path[-1]].internal.latency_ms
        )
        for a, b in zip(path, path[1:]):
            hop = self._edges[a][b]
            bandwidth = min(bandwidth, hop.bandwidth_mbps)
            latency += hop.latency_ms
        return Link(bandwidth, latency)

    def transfer_seconds(self, node_a: str, node_b: str, nbytes: int) -> float:
        """Time to move ``nbytes`` between two nodes; inf if disconnected."""
        if node_a == node_b:
            return 0.0
        link = self.link_between(node_a, node_b)
        if link is None:
            return float("inf")
        return link.transfer_seconds(nbytes)


def flat_lan(
    node_names: list[str], bandwidth_mbps: float = 100.0, latency_ms: float = 1.0
) -> NetworkTopology:
    """Everyone on one switch — the common intra-cluster case."""
    topo = NetworkTopology()
    topo.add_segment("lan", bandwidth_mbps, latency_ms)
    for node in node_names:
        topo.place(node, "lan")
    return topo


def two_groups(
    group_a: list[str],
    group_b: list[str],
    intra_mbps: float = 100.0,
    inter_mbps: float = 10.0,
) -> NetworkTopology:
    """The paper's example: two fast groups joined by a slow link."""
    topo = NetworkTopology()
    topo.add_segment("group_a", intra_mbps)
    topo.add_segment("group_b", intra_mbps)
    topo.connect("group_a", "group_b", inter_mbps)
    for node in group_a:
        topo.place(node, "group_a")
    for node in group_b:
        topo.place(node, "group_b")
    return topo
