"""Deterministic discrete-event loop.

Events are ordered by (time, sequence number), so two events scheduled for
the same instant fire in scheduling order.  This guarantees bit-identical
experiment runs for a given seed.
"""

import heapq
from typing import Callable, Optional

from repro.sim.clock import SimClock


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(when={self.when:.3f}, seq={self.seq}, {state})"


class EventLoop:
    """A heap-based discrete-event scheduler driving a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        handle = EventHandle(when, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(handle.when)
            self._events_fired += 1
            handle.callback()
            return True
        return False

    def run_until(self, when: float) -> None:
        """Run all events with time <= ``when``, then advance the clock."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.when > when:
                break
            self.step()
        if when > self.clock.now:
            self.clock.advance_to(when)

    def run_for(self, duration: float) -> None:
        """Run the simulation for ``duration`` seconds of simulated time."""
        self.run_until(self.clock.now + duration)

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the event queue, with a runaway guard."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    "likely an unbounded periodic task"
                )

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start_after: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until stopped."""
        return PeriodicTask(self, interval, callback, start_after)


class PeriodicTask:
    """A repeating event; reschedules itself after every firing."""

    def __init__(
        self,
        loop: EventLoop,
        interval: float,
        callback: Callable[[], None],
        start_after: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._stopped = False
        first = interval if start_after is None else start_after
        self._handle = loop.schedule(first, self._fire)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._loop.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the task.  The callback will not fire again."""
        self._stopped = True
        self._handle.cancel()
