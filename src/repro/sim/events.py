"""Deterministic discrete-event loop.

Events are ordered by (time, sequence number), so two events scheduled for
the same instant fire in scheduling order.  This guarantees bit-identical
experiment runs for a given seed.

Hot-path layout: the heap holds bare ``(when, seq, callback)`` tuples
rather than per-event objects, cancellation is a tombstone set keyed by
sequence number, and tombstones are compacted away whenever they would
outnumber half of the live heap.  :class:`EventHandle` is a thin
cancellable reference that is only materialized for callers that asked
for one; the periodic-task fast path never allocates handles at all.
"""

import heapq
from time import perf_counter
from typing import Callable, Optional

from repro.sim.clock import SimClock


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("when", "seq", "cancelled", "_loop")

    def __init__(self, loop: "EventLoop", when: float, seq: int):
        self.when = when
        self.seq = seq
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            self._loop._cancel(self.seq)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(when={self.when:.3f}, seq={self.seq}, {state})"


class EventLoop:
    """A heap-based discrete-event scheduler driving a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple] = []       # (when, seq, callback)
        self._cancelled: set[int] = set()  # seqs of tombstoned heap entries
        self._seq = 0
        self._events_fired = 0
        self._events_cancelled = 0
        self._handler_hist = None   # opt-in wall-time histogram
        # Opt-in hook fired after every event's callback returns; the
        # grid uses it to flush queued oneway ORB batches at sim-event
        # boundaries.  None (the default) costs one comparison per event.
        self._post_event = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Total number of events tombstoned so far."""
        return self._events_cancelled

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - len(self._cancelled)

    @property
    def raw_heap_size(self) -> int:
        """Heap entries including cancelled tombstones (diagnostics)."""
        return len(self._heap)

    # -- scheduling -----------------------------------------------------------

    def _push(self, when: float, callback: Callable[[], None]) -> int:
        """Enqueue without allocating a handle; returns the sequence number."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (when, seq, callback))
        return seq

    def _cancel(self, seq: int) -> None:
        """Tombstone an entry; compact once tombstones dominate the heap."""
        self._cancelled.add(seq)
        self._events_cancelled += 1
        if len(self._cancelled) * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries and restore the heap invariant in place."""
        cancelled = self._cancelled
        # In-place so aliases held by running fast paths stay valid.
        self._heap[:] = [e for e in self._heap if e[1] not in cancelled]
        cancelled.clear()
        heapq.heapify(self._heap)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        return EventHandle(self, when, self._push(when, callback))

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        when = self.clock.now + delay
        return EventHandle(self, when, self._push(when, callback))

    # -- observability ---------------------------------------------------------

    def to_metrics(self, registry, prefix: str = "eventloop") -> None:
        """Publish the loop's counters as registry views (pull-only).

        Views are evaluated at snapshot time, so the hot path keeps its
        plain integer bumps and pays nothing for being observable.
        """
        registry.view(f"{prefix}.events_fired", lambda: self._events_fired)
        registry.view(f"{prefix}.events_cancelled",
                      lambda: self._events_cancelled)
        registry.view(f"{prefix}.pending",
                      lambda: len(self._heap) - len(self._cancelled))
        registry.view(f"{prefix}.raw_heap_size", lambda: len(self._heap))
        registry.view(f"{prefix}.sim_time", lambda: self.clock.now)

    def set_post_event_hook(self, hook: Optional[Callable[[], None]]) -> None:
        """Run ``hook()`` after every fired event (None to detach).

        The hook fires with the clock already advanced to the event's
        time, so anything it emits happens "at" the same simulated
        instant, after the handler — a deterministic event boundary.
        """
        self._post_event = hook

    def time_handlers(self, histogram) -> None:
        """Opt-in: record each handler's wall time into ``histogram``.

        Switches :meth:`run_until` onto a timed twin of the fast path
        (two ``perf_counter`` calls per event); pass None to switch back.
        Timing never touches simulated time, so determinism holds.
        """
        self._handler_hist = histogram

    # -- running --------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            when, seq, callback = heapq.heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self.clock.advance_to(when)
            self._events_fired += 1
            hist = self._handler_hist
            if hist is not None:
                started = perf_counter()
                callback()
                hist.observe(perf_counter() - started)
            else:
                callback()
            post = self._post_event
            if post is not None:
                post()
            return True
        return False

    def run_until(self, when: float) -> None:
        """Run all events with time <= ``when``, then advance the clock.

        This is the batched fast path every experiment drives: the heap,
        tombstone set, and clock method are bound once, and each iteration
        pops exactly one tuple without re-entering :meth:`step`.
        """
        if self._handler_hist is not None:
            return self._run_until_timed(when)
        heap = self._heap
        cancelled = self._cancelled
        advance = self.clock.advance_to
        pop = heapq.heappop
        post = self._post_event
        while heap:
            entry = heap[0]
            if entry[0] > when:
                break
            pop(heap)
            seq = entry[1]
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            advance(entry[0])
            self._events_fired += 1
            entry[2]()
            if post is not None:
                post()
        if when > self.clock.now:
            advance(when)

    def _run_until_timed(self, when: float) -> None:
        """The :meth:`run_until` loop with per-handler wall timing."""
        heap = self._heap
        cancelled = self._cancelled
        advance = self.clock.advance_to
        pop = heapq.heappop
        observe = self._handler_hist.observe
        post = self._post_event
        while heap:
            entry = heap[0]
            if entry[0] > when:
                break
            pop(heap)
            seq = entry[1]
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            advance(entry[0])
            self._events_fired += 1
            started = perf_counter()
            entry[2]()
            observe(perf_counter() - started)
            if post is not None:
                post()
        if when > self.clock.now:
            advance(when)

    def run_for(self, duration: float) -> None:
        """Run the simulation for ``duration`` seconds of simulated time."""
        self.run_until(self.clock.now + duration)

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the event queue, with a runaway guard."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    "likely an unbounded periodic task"
                )

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start_after: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until stopped."""
        return PeriodicTask(self, interval, callback, start_after)


class PeriodicTask:
    """A repeating event; reschedules itself after every firing.

    Rescheduling pushes a bare heap tuple for the precomputed next firing
    time — no per-fire :class:`EventHandle` or closure allocation.
    """

    __slots__ = ("_loop", "interval", "_callback", "_stopped", "_pending_seq")

    def __init__(
        self,
        loop: EventLoop,
        interval: float,
        callback: Callable[[], None],
        start_after: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        first = interval if start_after is None else start_after
        if first < 0:
            raise ValueError(f"delay must be non-negative, got {first}")
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._stopped = False
        self._pending_seq = loop._push(loop.clock.now + first, self._fire)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            loop = self._loop
            self._pending_seq = loop._push(
                loop.clock.now + self.interval, self._fire
            )

    def stop(self) -> None:
        """Stop the task.  The callback will not fire again."""
        if not self._stopped:
            self._stopped = True
            self._loop._cancel(self._pending_seq)
