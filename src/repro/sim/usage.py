"""Synthetic owner-activity profiles.

The paper expects LUPA's clustering to recover "common usage periods such
as lunch-breaks, nights, holidays, working periods".  The profiles here
generate traces with exactly that structure: a weekly presence schedule
plus a Markov session model (so presence has realistic dwell times instead
of flickering every sample).
"""

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

PresenceFn = Callable[[int, float], float]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def _office_presence(day: int, hour: float) -> float:
    """Classic 9-to-6 office schedule with a lunch dip."""
    if day >= 5:                      # weekend
        return 0.05
    if 12.0 <= hour < 13.0:           # lunch break
        return 0.15
    if 9.0 <= hour < 18.0:            # working hours
        return 0.90
    if 8.0 <= hour < 9.0 or 18.0 <= hour < 19.0:
        return 0.40                   # arrival / departure shoulder
    return 0.02                       # night


def _student_lab_presence(day: int, hour: float) -> float:
    """Shared instructional lab: long moderately-busy days, open weekends."""
    if day >= 5:
        return 0.30 if 10.0 <= hour < 20.0 else 0.05
    if 8.0 <= hour < 22.0:
        return 0.60
    return 0.05


def _night_owl_presence(day: int, hour: float) -> float:
    """A researcher who computes interactively at night."""
    if 20.0 <= hour or hour < 2.0:
        return 0.80
    if 10.0 <= hour < 18.0:
        return 0.10
    return 0.03


def _always_idle_presence(day: int, hour: float) -> float:
    """A dedicated grid node: no interactive owner, ever."""
    return 0.0


def _erratic_presence(day: int, hour: float) -> float:
    """No temporal structure at all — the adversarial case for LUPA."""
    return 0.40


@dataclass(frozen=True)
class UsageProfile:
    """Statistical description of a machine owner's behaviour.

    ``presence`` maps (day-of-week, fractional hour) to the long-run
    probability that the owner is at the machine.  When present, the owner
    consumes CPU and memory drawn uniformly from the given ranges, fixed
    per session.
    """

    name: str
    presence: PresenceFn
    cpu_range: Tuple[float, float] = (0.20, 0.80)
    mem_fraction_range: Tuple[float, float] = (0.20, 0.60)
    net_mbps_range: Tuple[float, float] = (0.1, 5.0)
    mean_session_minutes: float = 45.0
    holiday_factor: float = 0.05

    def mean_presence(self, day: int, hour: float, holiday: bool = False) -> float:
        """Expected presence probability, optionally discounted for holidays."""
        p = self.presence(day % 7, hour % 24.0)
        if holiday:
            p *= self.holiday_factor
        return min(1.0, max(0.0, p))

    def transition_probs(self, mean: float, tick_minutes: float) -> Tuple[float, float]:
        """(p_on, p_off) per tick of a two-state Markov presence chain.

        Chosen so the chain's stationary distribution matches ``mean`` and
        mean busy-session length matches ``mean_session_minutes``.
        """
        if mean <= 0.0:
            return 0.0, 1.0
        if mean >= 1.0:
            return 1.0, 0.0
        p_off = min(1.0, tick_minutes / self.mean_session_minutes)
        p_on = min(1.0, p_off * mean / (1.0 - mean))
        return p_on, p_off


OFFICE_WORKER = UsageProfile(
    name="office_worker",
    presence=_office_presence,
    cpu_range=(0.25, 0.75),
    mem_fraction_range=(0.25, 0.60),
    mean_session_minutes=50.0,
)

STUDENT_LAB = UsageProfile(
    name="student_lab",
    presence=_student_lab_presence,
    cpu_range=(0.30, 0.90),
    mem_fraction_range=(0.30, 0.70),
    mean_session_minutes=35.0,
)

NIGHT_OWL = UsageProfile(
    name="night_owl",
    presence=_night_owl_presence,
    cpu_range=(0.40, 0.95),
    mem_fraction_range=(0.30, 0.70),
    mean_session_minutes=90.0,
)

ALWAYS_IDLE = UsageProfile(
    name="always_idle",
    presence=_always_idle_presence,
    cpu_range=(0.0, 0.0),
    mem_fraction_range=(0.0, 0.0),
    mean_session_minutes=1.0,
)

ERRATIC = UsageProfile(
    name="erratic",
    presence=_erratic_presence,
    cpu_range=(0.10, 0.95),
    mem_fraction_range=(0.10, 0.80),
    mean_session_minutes=25.0,
)

PROFILES = {
    p.name: p
    for p in (OFFICE_WORKER, STUDENT_LAB, NIGHT_OWL, ALWAYS_IDLE, ERRATIC)
}


# -- vectorized weekly grids ---------------------------------------------------
#
# Bulk consumers (multi-week LUPA trace generation, the workstation tick
# cache) evaluate presence over a whole week of tick times at once instead
# of calling ``mean_presence``/``transition_probs`` per tick.  The scalar
# presence function is sampled once per grid cell; everything downstream
# (holiday discount, clamping, Markov transition probabilities) is numpy
# elementwise arithmetic in the same operation order as the scalar path,
# so cached values are bit-identical to per-tick evaluation.

_GRID_CACHE: dict = {}


def presence_grid(
    profile: UsageProfile,
    tick_seconds: float = 300.0,
    holiday: bool = False,
) -> np.ndarray:
    """Weekly mean-presence vector, one entry per tick offset into the week.

    Entry ``k`` equals ``profile.mean_presence(day, hour, holiday)`` at
    week offset ``k * tick_seconds``.  Cached per (profile, tick, holiday).
    """
    key = ("presence", profile, float(tick_seconds), bool(holiday))
    grid = _GRID_CACHE.get(key)
    if grid is None:
        n = int(SECONDS_PER_WEEK // tick_seconds)
        times = np.arange(n) * float(tick_seconds)
        days = (times // SECONDS_PER_DAY).astype(int) % 7
        hours = (times % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        fn = profile.presence
        raw = np.fromiter(
            (fn(int(d), float(h)) for d, h in zip(days, hours)),
            dtype=np.float64,
            count=n,
        )
        if holiday:
            raw = raw * profile.holiday_factor
        grid = np.minimum(1.0, np.maximum(0.0, raw))
        grid.setflags(write=False)
        _GRID_CACHE[key] = grid
    return grid


def transition_grid(
    profile: UsageProfile,
    tick_seconds: float = 300.0,
    holiday: bool = False,
) -> np.ndarray:
    """Weekly ``(p_on, p_off)`` transition grid, shape ``(n, 2)``.

    Row ``k`` equals ``profile.transition_probs(mean_k, tick_minutes)``
    for the corresponding :func:`presence_grid` entry.
    """
    key = ("transition", profile, float(tick_seconds), bool(holiday))
    grid = _GRID_CACHE.get(key)
    if grid is None:
        mean = presence_grid(profile, tick_seconds, holiday)
        tick_minutes = tick_seconds / 60.0
        p_off = min(1.0, tick_minutes / profile.mean_session_minutes)
        with np.errstate(divide="ignore", invalid="ignore"):
            p_on = np.minimum(1.0, p_off * mean / (1.0 - mean))
        grid = np.empty((len(mean), 2))
        grid[:, 0] = p_on
        grid[:, 1] = p_off
        grid[mean <= 0.0] = (0.0, 1.0)
        grid[mean >= 1.0] = (1.0, 0.0)
        grid.setflags(write=False)
        _GRID_CACHE[key] = grid
    return grid


def transition_pairs(
    profile: UsageProfile,
    tick_seconds: float = 300.0,
    holiday: bool = False,
) -> list:
    """:func:`transition_grid` as a list of float pairs (fast to index)."""
    key = ("pairs", profile, float(tick_seconds), bool(holiday))
    pairs = _GRID_CACHE.get(key)
    if pairs is None:
        pairs = [tuple(row) for row in transition_grid(
            profile, tick_seconds, holiday
        ).tolist()]
        _GRID_CACHE[key] = pairs
    return pairs


def generate_presence_trace(
    profile: UsageProfile,
    weeks: int,
    tick_seconds: float = 300.0,
    seed: int = 0,
    holidays: Optional[set] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Simulate the two-state presence chain for ``weeks`` weeks at once.

    Returns a boolean array with one entry per tick.  The per-tick
    transition probabilities come from the vectorized weekly grids (tiled
    across weeks, with holiday days swapped in), so generating months of
    LUPA training data costs one tight scan instead of millions of
    presence-function calls.  Uses its own numpy RNG stream — this is the
    bulk offline generator, not the event-driven workstation model.
    """
    if weeks <= 0:
        raise ValueError(f"weeks must be positive, got {weeks}")
    base = transition_grid(profile, tick_seconds, holiday=False)
    n_week = len(base)
    n = n_week * int(weeks)
    probs = np.tile(base, (int(weeks), 1))
    if holidays:
        hol = transition_grid(profile, tick_seconds, holiday=True)
        ticks_per_day = int(SECONDS_PER_DAY // tick_seconds)
        for day in sorted(holidays):
            lo = day * ticks_per_day
            if lo >= n:
                continue
            hi = min(n, lo + ticks_per_day)
            week_lo = lo % n_week
            probs[lo:hi] = hol[week_lo:week_lo + (hi - lo)]
    if rng is None:
        rng = np.random.default_rng(seed)
    draws = rng.random(n)
    p_on = probs[:, 0].tolist()
    p_off = probs[:, 1].tolist()
    u = draws.tolist()
    out = np.empty(n, dtype=bool)
    present = False
    for i in range(n):
        if present:
            if u[i] < p_off[i]:
                present = False
        else:
            if u[i] < p_on[i]:
                present = True
        out[i] = present
    return out
