"""Synthetic owner-activity profiles.

The paper expects LUPA's clustering to recover "common usage periods such
as lunch-breaks, nights, holidays, working periods".  The profiles here
generate traces with exactly that structure: a weekly presence schedule
plus a Markov session model (so presence has realistic dwell times instead
of flickering every sample).
"""

from dataclasses import dataclass, field
from typing import Callable, Tuple

PresenceFn = Callable[[int, float], float]


def _office_presence(day: int, hour: float) -> float:
    """Classic 9-to-6 office schedule with a lunch dip."""
    if day >= 5:                      # weekend
        return 0.05
    if 12.0 <= hour < 13.0:           # lunch break
        return 0.15
    if 9.0 <= hour < 18.0:            # working hours
        return 0.90
    if 8.0 <= hour < 9.0 or 18.0 <= hour < 19.0:
        return 0.40                   # arrival / departure shoulder
    return 0.02                       # night


def _student_lab_presence(day: int, hour: float) -> float:
    """Shared instructional lab: long moderately-busy days, open weekends."""
    if day >= 5:
        return 0.30 if 10.0 <= hour < 20.0 else 0.05
    if 8.0 <= hour < 22.0:
        return 0.60
    return 0.05


def _night_owl_presence(day: int, hour: float) -> float:
    """A researcher who computes interactively at night."""
    if 20.0 <= hour or hour < 2.0:
        return 0.80
    if 10.0 <= hour < 18.0:
        return 0.10
    return 0.03


def _always_idle_presence(day: int, hour: float) -> float:
    """A dedicated grid node: no interactive owner, ever."""
    return 0.0


def _erratic_presence(day: int, hour: float) -> float:
    """No temporal structure at all — the adversarial case for LUPA."""
    return 0.40


@dataclass(frozen=True)
class UsageProfile:
    """Statistical description of a machine owner's behaviour.

    ``presence`` maps (day-of-week, fractional hour) to the long-run
    probability that the owner is at the machine.  When present, the owner
    consumes CPU and memory drawn uniformly from the given ranges, fixed
    per session.
    """

    name: str
    presence: PresenceFn
    cpu_range: Tuple[float, float] = (0.20, 0.80)
    mem_fraction_range: Tuple[float, float] = (0.20, 0.60)
    net_mbps_range: Tuple[float, float] = (0.1, 5.0)
    mean_session_minutes: float = 45.0
    holiday_factor: float = 0.05

    def mean_presence(self, day: int, hour: float, holiday: bool = False) -> float:
        """Expected presence probability, optionally discounted for holidays."""
        p = self.presence(day % 7, hour % 24.0)
        if holiday:
            p *= self.holiday_factor
        return min(1.0, max(0.0, p))

    def transition_probs(self, mean: float, tick_minutes: float) -> Tuple[float, float]:
        """(p_on, p_off) per tick of a two-state Markov presence chain.

        Chosen so the chain's stationary distribution matches ``mean`` and
        mean busy-session length matches ``mean_session_minutes``.
        """
        if mean <= 0.0:
            return 0.0, 1.0
        if mean >= 1.0:
            return 1.0, 0.0
        p_off = min(1.0, tick_minutes / self.mean_session_minutes)
        p_on = min(1.0, p_off * mean / (1.0 - mean))
        return p_on, p_off


OFFICE_WORKER = UsageProfile(
    name="office_worker",
    presence=_office_presence,
    cpu_range=(0.25, 0.75),
    mem_fraction_range=(0.25, 0.60),
    mean_session_minutes=50.0,
)

STUDENT_LAB = UsageProfile(
    name="student_lab",
    presence=_student_lab_presence,
    cpu_range=(0.30, 0.90),
    mem_fraction_range=(0.30, 0.70),
    mean_session_minutes=35.0,
)

NIGHT_OWL = UsageProfile(
    name="night_owl",
    presence=_night_owl_presence,
    cpu_range=(0.40, 0.95),
    mem_fraction_range=(0.30, 0.70),
    mean_session_minutes=90.0,
)

ALWAYS_IDLE = UsageProfile(
    name="always_idle",
    presence=_always_idle_presence,
    cpu_range=(0.0, 0.0),
    mem_fraction_range=(0.0, 0.0),
    mean_session_minutes=1.0,
)

ERRATIC = UsageProfile(
    name="erratic",
    presence=_erratic_presence,
    cpu_range=(0.10, 0.95),
    mem_fraction_range=(0.10, 0.80),
    mean_session_minutes=25.0,
)

PROFILES = {
    p.name: p
    for p in (OFFICE_WORKER, STUDENT_LAB, NIGHT_OWL, ALWAYS_IDLE, ERRATIC)
}
