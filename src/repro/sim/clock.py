"""Simulated wall-clock time.

All middleware components take a clock object so that the same code runs on
simulated time during experiments and could run on real time in deployment.
Times are seconds since the simulation epoch, which is defined to be
midnight on a Monday so that calendar helpers are trivial.
"""

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

DAY_NAMES = (
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
)


class SimClock:
    """A monotonically advancing simulated clock.

    The epoch (time 0.0) is midnight at the start of a Monday.  Only the
    event loop should advance the clock; everything else reads it.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.  Never moves backwards."""
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: {when} < {self._now}"
            )
        self._now = float(when)

    # -- calendar helpers -------------------------------------------------

    def day_of_week(self, when: float = None) -> int:
        """Day index 0..6 (0 = Monday) for ``when`` (default: now)."""
        t = self._now if when is None else when
        return int(t // SECONDS_PER_DAY) % 7

    def day_name(self, when: float = None) -> str:
        """Lower-case English day name for ``when`` (default: now)."""
        return DAY_NAMES[self.day_of_week(when)]

    def second_of_day(self, when: float = None) -> float:
        """Seconds elapsed since the most recent midnight."""
        t = self._now if when is None else when
        return t % SECONDS_PER_DAY

    def hour_of_day(self, when: float = None) -> float:
        """Fractional hour of day in [0, 24)."""
        return self.second_of_day(when) / SECONDS_PER_HOUR

    def week_index(self, when: float = None) -> int:
        """How many whole weeks have elapsed since the epoch."""
        t = self._now if when is None else when
        return int(t // SECONDS_PER_WEEK)

    def is_weekend(self, when: float = None) -> bool:
        """True on Saturday or Sunday."""
        return self.day_of_week(when) >= 5

    def __repr__(self) -> str:
        return (
            f"SimClock(t={self._now:.1f}, week={self.week_index()}, "
            f"{self.day_name()} {self.hour_of_day():05.2f}h)"
        )
