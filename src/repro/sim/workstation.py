"""A workstation: a machine plus the synthetic owner who uses it.

The workstation drives owner load onto its :class:`~repro.sim.machine.Machine`
on a fixed tick and notifies listeners (typically the LRM) when the owner
arrives or leaves.  Everything is deterministic given the seed streams.
"""

import random
from typing import Callable, Optional

from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import Machine, MachineSpec
from repro.sim.usage import UsageProfile, ALWAYS_IDLE, transition_pairs

OwnerListener = Callable[[bool], None]

DEFAULT_TICK_SECONDS = 300.0   # 5 minutes, the paper's sampling interval


class Workstation:
    """Machine + owner activity model, driven by the event loop."""

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        spec: Optional[MachineSpec] = None,
        profile: UsageProfile = ALWAYS_IDLE,
        rng: Optional[random.Random] = None,
        tick_seconds: float = DEFAULT_TICK_SECONDS,
        holidays: Optional[set] = None,
        scheduling: str = "owner_first",
    ):
        self.loop = loop
        self.machine = Machine(name, spec, scheduling=scheduling)
        self.profile = profile
        self.tick_seconds = float(tick_seconds)
        self.holidays = holidays if holidays is not None else set()
        self._rng = rng if rng is not None else random.Random(0)
        self._present = False
        self._session_cpu = 0.0
        self._session_mem_mb = 0.0
        self._session_net_mbps = 0.0
        self._listeners: list[OwnerListener] = []
        # Weekly transition-prob cache: valid only when tick times repeat
        # with the week, i.e. the tick divides the week evenly.  Built
        # lazily (per holiday flag) from the vectorized usage grids.
        self._tp_cacheable = (SECONDS_PER_WEEK % self.tick_seconds) == 0.0
        self._tp_pairs: dict[bool, list] = {}
        self._task = loop.every(self.tick_seconds, self._tick, start_after=0.0)

    @property
    def name(self) -> str:
        return self.machine.name

    @property
    def owner_present(self) -> bool:
        return self._present

    def stop(self) -> None:
        """Detach from the event loop (end of experiment)."""
        self._task.stop()

    def on_owner_change(self, listener: OwnerListener) -> None:
        """Register a callback fired with True on arrival, False on leave."""
        self._listeners.append(listener)

    # -- ground truth for experiment evaluation ------------------------------

    def is_holiday(self, when: Optional[float] = None) -> bool:
        t = self.loop.now if when is None else when
        return int(t // SECONDS_PER_DAY) in self.holidays

    def true_mean_presence(self, when: float) -> float:
        """The profile's actual presence probability at time ``when``.

        Used only by experiment harnesses to score LUPA's predictions; the
        middleware itself never sees this.
        """
        clock = self.loop.clock
        return self.profile.mean_presence(
            clock.day_of_week(when), clock.hour_of_day(when),
            holiday=self.is_holiday(when),
        )

    # -- internals ------------------------------------------------------------

    def _transition_probs_now(self) -> tuple:
        """Per-tick (p_on, p_off), served from the weekly cache when the
        current time falls exactly on the cached grid."""
        now = self.loop.now
        if self._tp_cacheable:
            index = (now % SECONDS_PER_WEEK) / self.tick_seconds
            k = int(index)
            if k == index:
                holiday = self.is_holiday(now)
                pairs = self._tp_pairs.get(holiday)
                if pairs is None:
                    pairs = self._tp_pairs[holiday] = transition_pairs(
                        self.profile, self.tick_seconds, holiday
                    )
                return pairs[k]
        mean = self.true_mean_presence(now)
        return self.profile.transition_probs(mean, self.tick_seconds / 60.0)

    def _tick(self) -> None:
        p_on, p_off = self._transition_probs_now()
        was_present = self._present
        if self._present:
            if self._rng.random() < p_off:
                self._present = False
        else:
            if self._rng.random() < p_on:
                self._present = True
                self._start_session()
        self._apply_load()
        if was_present != self._present:
            for listener in self._listeners:
                listener(self._present)

    def _start_session(self) -> None:
        lo, hi = self.profile.cpu_range
        self._session_cpu = self._rng.uniform(lo, hi)
        mlo, mhi = self.profile.mem_fraction_range
        self._session_mem_mb = (
            self._rng.uniform(mlo, mhi) * self.machine.spec.ram_mb
        )
        nlo, nhi = self.profile.net_mbps_range
        self._session_net_mbps = self._rng.uniform(nlo, nhi)

    def _apply_load(self) -> None:
        if self._present:
            jitter = 1.0 + self._rng.uniform(-0.1, 0.1)
            cpu = min(1.0, max(0.0, self._session_cpu * jitter))
            self.machine.set_owner_load(
                cpu, self._session_mem_mb, True,
                net_mbps=self._session_net_mbps,
            )
        else:
            self.machine.set_owner_load(0.0, 0.0, False, net_mbps=0.0)

    def __repr__(self) -> str:
        state = "present" if self._present else "away"
        return f"Workstation({self.name!r}, {self.profile.name}, owner {state})"
