"""Discrete-event simulation substrate for desktop grids.

The paper evaluated InteGrade on real workstations at the University of
São Paulo.  This package provides the synthetic equivalent: a deterministic
discrete-event simulator of desktop machines, their owners' activity
patterns, and the network that connects them.  The middleware components in
:mod:`repro.core` run unmodified on top of this substrate, consuming the
same signal real nodes would produce (periodic resource-usage samples).
"""

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, EventHandle, PeriodicTask
from repro.sim.machine import MachineSpec, Machine, ResourceSample
from repro.sim.network import NetworkTopology, Link, LanSegment
from repro.sim.usage import (
    UsageProfile,
    OFFICE_WORKER,
    STUDENT_LAB,
    NIGHT_OWL,
    ALWAYS_IDLE,
    ERRATIC,
    PROFILES,
)
from repro.sim.workstation import Workstation

__all__ = [
    "SimClock",
    "EventLoop",
    "EventHandle",
    "PeriodicTask",
    "MachineSpec",
    "Machine",
    "ResourceSample",
    "NetworkTopology",
    "Link",
    "LanSegment",
    "UsageProfile",
    "OFFICE_WORKER",
    "STUDENT_LAB",
    "NIGHT_OWL",
    "ALWAYS_IDLE",
    "ERRATIC",
    "PROFILES",
    "Workstation",
]
