"""Deterministic random-number streams.

Every stochastic element of the simulation draws from a named stream so that
adding a new consumer of randomness does not perturb existing streams, and
experiments replay bit-identically for a given master seed.
"""

import hashlib
import random


class SeededStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def fork(self, name: str) -> "SeededStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork/{name}".encode()
        ).digest()
        return SeededStreams(int.from_bytes(digest[:8], "big"))
