"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — assemble a small cluster, run a job, print the story.
* ``simulate`` — parameterised desktop-grid simulation with a summary
  report (nodes, profiles, policy, workload, duration).
* ``doctor`` — offline postmortem from an exported event journal:
  failure chains, recovery outcomes, alert firings.
* ``profiles`` — list the built-in owner-activity profiles.
* ``policies`` — list the scheduling policies.
"""

import argparse
import sys

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table, describe
from repro.core.ncc import DEFAULT_POLICY, VACATE_POLICY
from repro.core.scheduler import POLICIES
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import PROFILES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InteGrade grid middleware (reproduction) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run a small end-to-end demonstration")
    sub.add_parser("profiles", help="list owner-activity profiles")
    sub.add_parser("policies", help="list scheduling policies")
    report = sub.add_parser(
        "report", help="print the saved experiment result tables"
    )
    report.add_argument("--results-dir", default=None,
                        help="directory of saved tables "
                             "(default: benchmarks/results)")
    report.add_argument("--metrics", default=None, metavar="FILE",
                        help="also print a metrics snapshot JSON file "
                             "(from simulate --metrics-json)")

    simulate = sub.add_parser(
        "simulate", help="run a parameterised desktop-grid simulation"
    )
    simulate.add_argument("--nodes", type=int, default=12,
                          help="number of shared workstations (default 12)")
    simulate.add_argument("--dedicated", type=int, default=0,
                          help="number of dedicated nodes (default 0)")
    simulate.add_argument("--profile", default="office_worker",
                          choices=sorted(PROFILES),
                          help="owner profile for the workstations")
    simulate.add_argument("--policy", default="pattern_aware",
                          choices=sorted(POLICIES),
                          help="GRM scheduling policy")
    simulate.add_argument("--jobs", type=int, default=6,
                          help="sequential jobs to submit (default 6)")
    simulate.add_argument("--work-hours", type=float, default=2.0,
                          help="per-job work in idle-hours of a 1000 MIPS "
                               "machine (default 2.0)")
    simulate.add_argument("--train-days", type=int, default=14,
                          help="days of LUPA training before submission")
    simulate.add_argument("--horizon-days", type=float, default=3.0,
                          help="how long to wait for the batch (default 3)")
    simulate.add_argument("--vacate", action="store_true",
                          help="owners evict grid work on return "
                               "(default: throttle and share)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--checkpoint-s", type=float, default=900.0,
                          help="checkpoint interval in seconds (0 = off)")
    simulate.add_argument("--dashboard", action="store_true",
                          help="print utilisation sparklines for the run")
    simulate.add_argument("--trace", default=None, metavar="PATH",
                          help="record spans and write a Chrome "
                               "trace_event JSON (open in about:tracing)")
    simulate.add_argument("--trace-jsonl", default=None, metavar="PATH",
                          help="record spans and write them as JSONL")
    simulate.add_argument("--metrics-json", default=None, metavar="PATH",
                          help="enable the metrics registry and write its "
                               "final snapshot as JSON")
    simulate.add_argument("--journal", default=None, metavar="PATH",
                          help="record the structured event journal and "
                               "write it as JSONL")
    simulate.add_argument("--health-report", default=None, metavar="PATH",
                          help="enable journal+metrics and write the final "
                               "health report (forensics + alerts) as JSON")

    doctor = sub.add_parser(
        "doctor",
        help="postmortem from an exported event journal (offline)",
    )
    doctor.add_argument("journal", metavar="JOURNAL",
                        help="journal JSONL file (from simulate --journal)")
    doctor.add_argument("--metrics", default=None, metavar="FILE",
                        help="metrics snapshot JSON to evaluate alert "
                             "rules against (from simulate --metrics-json)")
    doctor.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full report as JSON")
    doctor.add_argument("--top", type=int, default=5,
                        help="alert firings to list (default 5)")
    return parser


def cmd_profiles() -> int:
    table = Table(["profile", "mean session (min)", "description"])
    blurbs = {
        "office_worker": "9-18 weekdays, lunch dip, quiet nights/weekends",
        "student_lab": "shared lab, long moderately-busy days",
        "night_owl": "computes interactively 20:00-02:00",
        "always_idle": "no interactive owner (dedicated node)",
        "erratic": "no temporal structure (adversarial for LUPA)",
    }
    for name, profile in sorted(PROFILES.items()):
        table.add_row(name, profile.mean_session_minutes, blurbs.get(name, ""))
    print(table.render())
    return 0


def cmd_policies() -> int:
    table = Table(["policy", "ranks candidates by"])
    blurbs = {
        "first_fit": "trader order (deterministic)",
        "random": "uniformly random (no-information baseline)",
        "fastest_first": "effective speed (MIPS x free CPU)",
        "pattern_aware": "predicted idle span x speed (the paper's policy)",
    }
    for name in sorted(POLICIES):
        table.add_row(name, blurbs.get(name, ""))
    print(table.render())
    return 0


def cmd_demo() -> int:
    print("Assembling one cluster: 4 office workstations + 1 dedicated "
          "node...")
    grid = Grid(seed=42, policy="pattern_aware")
    grid.add_cluster("demo")
    for i in range(4):
        grid.add_node("demo", f"office{i}",
                      profile=PROFILES["office_worker"])
    grid.add_node("demo", "server0", dedicated=True)
    grid.run_for(600)
    asct = grid.make_asct("demo")
    job_id = asct.submit(ApplicationSpec(
        name="demo-job", tasks=2, work_mips=1.8e6,
        metadata={"checkpoint_interval_s": 600.0},
    ))
    print(f"Submitted 2-task job {job_id}; advancing simulated time...")
    grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
    status = asct.status(job_id)
    print(f"Job state: {status['state']}")
    for task in status["tasks"]:
        print(f"  {task['task_id']}: node={task['node']} "
              f"attempts={task['attempts']}")
    stats = grid.protocol_stats()
    print(f"ORB traffic: {stats['requests_handled']} requests, "
          f"{stats['bytes_sent']} bytes")
    return 0


def cmd_simulate(args) -> int:
    grid = Grid(
        seed=args.seed, policy=args.policy,
        lupa_enabled=args.policy == "pattern_aware",
        update_interval=120.0, tick_interval=60.0,
    )
    grid.add_cluster("sim")
    profile = PROFILES[args.profile]
    sharing = VACATE_POLICY if args.vacate else DEFAULT_POLICY
    for i in range(args.nodes):
        grid.add_node("sim", f"ws{i:03}", profile=profile, sharing=sharing)
    for i in range(args.dedicated):
        grid.add_node("sim", f"ded{i:02}", dedicated=True)

    monitor = None
    if args.dashboard:
        from repro.core.monitor import ClusterMonitor
        monitor = ClusterMonitor(grid.loop, grid.clusters["sim"].grm,
                                 period=1800.0)

    tracer = None
    if args.trace or args.trace_jsonl:
        tracer = grid.enable_tracing()
    if args.metrics_json or args.health_report:
        grid.enable_metrics()
        if monitor is not None:
            monitor.to_metrics(grid.metrics)
    journal = None
    if args.journal or args.health_report:
        journal = grid.enable_journal()

    print(f"{args.nodes} x {args.profile} workstations"
          + (f" + {args.dedicated} dedicated" if args.dedicated else "")
          + f", policy={args.policy}, seed={args.seed}")
    if args.train_days:
        print(f"Training LUPA for {args.train_days} days...")
        grid.run_for(args.train_days * SECONDS_PER_DAY)
    grid.run_for(9 * SECONDS_PER_HOUR)

    work = args.work_hours * 3600.0 * 1000.0
    print(f"Submitting {args.jobs} jobs of {args.work_hours} idle-hours "
          "each (Monday 09:00)...")
    def _submit(j: int) -> str:
        spec = ApplicationSpec(
            name=f"job{j}", work_mips=work,
            metadata={"checkpoint_interval_s": args.checkpoint_s},
        )
        if tracer is None:
            return grid.submit(spec)
        # Each submission roots its own trace; everything the job causes
        # (schedule passes, trader queries, reservations) links under it.
        with tracer.span("cli.submit", component="cli", job_name=spec.name):
            return grid.submit(spec)

    job_ids = [_submit(j) for j in range(args.jobs)]
    deadline = grid.loop.now + args.horizon_days * SECONDS_PER_DAY
    while grid.loop.now < deadline:
        grid.run_for(SECONDS_PER_HOUR)
        if all(grid.job(j).done for j in job_ids):
            break

    jobs = [grid.job(j) for j in job_ids]
    spans = [j.makespan for j in jobs if j.makespan is not None]
    table = Table(["metric", "value"], title="\nSimulation report")
    table.add_row("jobs completed", f"{len(spans)}/{args.jobs}")
    if spans:
        stats = describe(spans)
        table.add_row("makespan p50 (h)", stats["p50"] / 3600)
        table.add_row("makespan p95 (h)", stats["p95"] / 3600)
    table.add_row("evictions",
                  sum(t.evictions for j in jobs for t in j.tasks))
    table.add_row("wasted CPU (min)",
                  sum(t.wasted_mips for j in jobs for t in j.tasks) / 60000)
    grm = grid.clusters["sim"].grm
    table.add_row("negotiation rounds", grm.stats.negotiation_rounds)
    table.add_row("reservation refusals", grm.stats.reservations_refused)
    orb = grid.protocol_stats()
    table.add_row("ORB requests", orb["requests_handled"])
    table.add_row("ORB KB sent", orb["bytes_sent"] / 1024)
    print(table.render())
    if monitor is not None:
        print("\nUtilisation (darker = more):")
        for label, field_name in (
            ("owners at machines", "owner_active_nodes"),
            ("CPU offered to grid", "cpu_free_for_grid"),
            ("grid tasks running", "grid_tasks"),
        ):
            print(f"  {label:<20} |{monitor.sparkline(field_name, 60)}|")
    if tracer is not None:
        from repro.obs import export_chrome_trace, export_jsonl
        if args.trace:
            export_chrome_trace(tracer.finished, args.trace)
            print(f"\nChrome trace ({len(tracer)} spans) -> {args.trace}")
        if args.trace_jsonl:
            export_jsonl(tracer.finished, args.trace_jsonl)
            print(f"Span JSONL ({len(tracer)} spans) -> {args.trace_jsonl}")
    if args.metrics_json:
        from repro.obs import export_metrics_json
        export_metrics_json(grid.metrics, args.metrics_json)
        print(f"Metrics snapshot -> {args.metrics_json}")
    if journal is not None and args.journal:
        from repro.obs import export_journal_jsonl
        count = export_journal_jsonl(journal.events, args.journal)
        print(f"Event journal ({count} events) -> {args.journal}")
    if args.health_report:
        import json as _json

        from repro.obs import render_health_report
        report = grid.health_report()
        with open(args.health_report, "w") as f:
            _json.dump(report, f, indent=2, sort_keys=True)
        print(f"Health report -> {args.health_report}")
        print(render_health_report(report))
    return 0


def cmd_doctor(args) -> int:
    import json

    from repro.obs import (
        doctor_report,
        load_journal_jsonl,
        render_health_report,
        validate_journal,
    )

    events = load_journal_jsonl(args.journal)
    validate_journal(events)
    metrics = None
    rules = None
    if args.metrics:
        with open(args.metrics) as f:
            snapshot = json.load(f)
        metrics = snapshot.get("metrics", snapshot)
        # Shape the stock rule set from the metric names themselves so
        # offline reports cover the same clusters/jobs as live ones.
        from repro.obs import default_rules
        clusters = sorted({
            name.split(".", 2)[1] for name in metrics
            if name.startswith("grm.") and name.count(".") >= 2
        })
        bsp_jobs = sorted({
            name.split(".", 2)[1] for name in metrics
            if name.startswith("bsp.") and name.endswith(".stragglers")
        })
        rules = default_rules(clusters=clusters, bsp_jobs=bsp_jobs)
    report = doctor_report(events, metrics=metrics, rules=rules,
                           top=args.top)
    print(render_health_report(report))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"Report JSON -> {args.json}")
    return 0


def _print_metrics_file(path: str) -> int:
    import json

    with open(path) as f:
        snapshot = json.load(f)
    metrics = snapshot.get("metrics", {})
    table = Table(["metric", "value"],
                  title=f"Metrics snapshot at t={snapshot.get('time', 0.0)}s")
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, dict):   # histogram snapshot
            table.add_row(
                name,
                f"n={value.get('count', 0)} mean={value.get('mean', 0.0):.3g} "
                f"p95={value.get('p95', 0.0):.3g} p99={value.get('p99', 0.0):.3g}",
            )
        else:
            table.add_row(name, value)
    print(table.render())
    return 0


def cmd_report(args) -> int:
    import os

    if getattr(args, "metrics", None):
        _print_metrics_file(args.metrics)
        if args.results_dir is None:
            return 0   # metrics-only report
        print()

    directory = args.results_dir
    if directory is None:
        directory = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))),
            "benchmarks", "results",
        )
    if not os.path.isdir(directory):
        print(f"no results directory at {directory}; "
              "run `pytest benchmarks/ --benchmark-only` first")
        return 1
    names = sorted(
        n for n in os.listdir(directory) if n.endswith(".txt")
    )
    if not names:
        print(f"no result tables in {directory}")
        return 1
    for name in names:
        with open(os.path.join(directory, name)) as f:
            print(f.read().rstrip())
        print()
    print(f"({len(names)} experiment tables from {directory})")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "profiles":
        return cmd_profiles()
    if args.command == "policies":
        return cmd_policies()
    if args.command == "demo":
        return cmd_demo()
    if args.command == "simulate":
        return cmd_simulate(args)
    if args.command == "doctor":
        return cmd_doctor(args)
    if args.command == "report":
        return cmd_report(args)
    return 2   # unreachable: argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
