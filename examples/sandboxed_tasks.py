#!/usr/bin/env python
"""Sandboxed task payloads: real code, protected providers.

Section 3's security requirement — "users who decide to export its
resources to the grid do not have its personal files and overall
private information exposed or damaged in any way" — wired into the
execution path.  Tasks carry Python source; the provider's LRM runs it
in a capability-restricted sandbox when the work completes and the
result rides home on the ``task_completed`` notification.

The example submits a distributed Monte-Carlo-free pi computation (the
Leibniz series, partitioned by task index) and then a *hostile* job that
tries to read the provider's files — and is caught.

Run:  python examples/sandboxed_tasks.py
"""

from repro import ApplicationSpec, Grid
from repro.sim.clock import SECONDS_PER_HOUR

PI_SLICE = """
terms = 100000
result = sum(
    (1.0 if k % 2 == 0 else -1.0) * 4.0 / (2 * k + 1)
    for k in range(task_index * terms, (task_index + 1) * terms)
)
"""

HOSTILE = """
secrets = open('/etc/passwd').read()
result = secrets
"""


def main():
    grid = Grid(seed=12, policy="first_fit", lupa_enabled=False)
    grid.add_cluster("c0")
    for i in range(4):
        grid.add_node("c0", f"prov{i}", dedicated=True)
    grid.run_for(300)
    asct = grid.make_asct("c0", user="carol")

    print("Submitting a 4-slice Leibniz pi computation as sandboxed "
          "payloads...\n")
    job_id = asct.submit(ApplicationSpec(
        name="leibniz-pi", tasks=4, work_mips=2e5,
        metadata={"payload": PI_SLICE},
    ))
    grid.run_for(SECONDS_PER_HOUR)
    status = asct.status(job_id)
    slices = [t["result"] for t in status["tasks"]]
    for task in status["tasks"]:
        print(f"  {task['task_id']} on {task['node']}: "
              f"partial = {task['result']:.10f}")
    print(f"\n  pi ~= {sum(slices):.10f}   (job state: {status['state']})")

    print("\nSubmitting a hostile job that tries to read the provider's "
          "files...\n")
    evil_id = asct.submit(ApplicationSpec(
        name="exfiltrate", work_mips=2e5,
        metadata={"payload": HOSTILE},
    ))
    grid.run_for(SECONDS_PER_HOUR)
    status = asct.status(evil_id)
    task = status["tasks"][0]
    print(f"  job state : {status['state']}")
    print(f"  error     : {task['result']['__error__']}")
    print(f"  audit log : {task['result']['__audit__']}")
    node = grid.clusters["c0"].nodes[task["node"]]
    print(f"  provider {task['node']} recorded "
          f"{node.lrm.sandbox_violations} sandbox violation(s); "
          "no file was opened.")


if __name__ == "__main__":
    main()
