#!/usr/bin/env python
"""Cluster dashboard: a week of grid operation, monitored.

Attaches a :class:`~repro.core.monitor.ClusterMonitor` to a busy mixed
cluster and renders the week as ASCII sparklines: owner activity, grid
supply (free CPU under the owners' policies), and grid work actually
placed — the ebb and flow the paper's whole design is about (day-time
owners, night-time harvesting).

Run:  python examples/cluster_dashboard.py
"""

from repro import ApplicationSpec, Grid
from repro.core.monitor import ClusterMonitor
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB

NODES = 12
DAYS = 7


def main():
    grid = Grid(seed=23, policy="fastest_first", lupa_enabled=False,
                update_interval=300.0, tick_interval=120.0)
    grid.add_cluster("dept")
    profiles = [OFFICE_WORKER] * 7 + [STUDENT_LAB] * 3 + [NIGHT_OWL] * 2
    for i, profile in enumerate(profiles):
        grid.add_node("dept", f"ws{i:02}", profile=profile,
                      sharing=VACATE_POLICY)
    monitor = ClusterMonitor(grid.loop, grid.clusters["dept"].grm,
                             period=1800.0)

    # A steady stream of grid work: one two-task job every 3 hours.
    def submit_batch():
        grid.submit(ApplicationSpec(
            name="work", tasks=2, work_mips=1.2e7,
            metadata={"checkpoint_interval_s": 900.0},
        ))

    grid.loop.every(3 * SECONDS_PER_HOUR, submit_batch)
    print(f"Simulating {DAYS} days of a {NODES}-node department "
          "with a steady job stream...\n")
    grid.run_for(DAYS * SECONDS_PER_DAY)

    width = 70
    print(f"One character = {DAYS * 24 / width:.1f} h, "
          "Monday 00:00 -> Sunday 24:00  (darker = more)\n")
    rows = [
        ("owners at their machines", "owner_active_nodes"),
        ("CPU offered to the grid", "cpu_free_for_grid"),
        ("grid tasks running", "grid_tasks"),
        ("tasks waiting (pending)", "pending_tasks"),
    ]
    for label, field in rows:
        line = monitor.sparkline(field, width=width)
        print(f"  {label:<26} |{line}|")

    print()
    grm = grid.clusters["dept"].grm
    done = sum(1 for j in grm.jobs if j.makespan is not None)
    print(f"jobs completed: {done}/{len(grm.jobs)}   "
          f"evictions handled: {grm.stats.evictions_handled}   "
          f"mean grid tasks running: {monitor.mean('grid_tasks'):.1f}")
    print("\nThe anti-correlation is the paper's story: the grid rises "
          "when the owners leave\n(nights, weekend) and yields when "
          "they return.")


if __name__ == "__main__":
    main()
