#!/usr/bin/env python
"""Quickstart: assemble a small InteGrade cluster and run a job.

Builds the Figure 1 architecture on simulated time — a Cluster Manager
(GRM + GUPA + Trader), a few shared office workstations, one dedicated
node — submits a sequential application through the ASCT, and watches
it complete.

Run:  python examples/quickstart.py
"""

from repro import ApplicationSpec, Grid, ResourceRequirements
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.usage import OFFICE_WORKER


def main():
    # One grid, one cluster, mixed resource providers.
    grid = Grid(seed=42, policy="pattern_aware")
    grid.add_cluster("lab")
    for i in range(4):
        grid.add_node("lab", f"office{i}", profile=OFFICE_WORKER)
    grid.add_node("lab", "server0", dedicated=True)

    # Let the LRMs register and send their first status updates.
    grid.run_for(10 * 60)
    print("Cluster assembled:")
    grm = grid.clusters["lab"].grm
    for offer in grm.trader.query("node"):
        props = offer["properties"]
        print(
            f"  {props['node']:<9} {props['mips']:>6.0f} MIPS  "
            f"cpu_free={props['cpu_free']:.2f}  "
            f"owner_active={props['owner_active']}"
        )

    # A user node submits through the ASCT: the paper's example
    # requirements ("at least 16 MB of RAM and a CPU of at least 500
    # MIPS") plus a preference for faster CPUs.
    asct = grid.make_asct("lab", user="alice")
    spec = ApplicationSpec(
        name="simulation-sweep",
        tasks=3,
        work_mips=3.6e6,   # one hour on a fully idle 1000 MIPS machine
        requirements=ResourceRequirements(min_mips=500, min_ram_mb=16),
        preference="mips",
        metadata={"checkpoint_interval_s": 600.0},
    )
    job_id = asct.submit(spec)
    print(f"\nSubmitted {spec.name!r} as {job_id} (3 tasks x 3.6e6 MI)")

    # Watch progress for up to twelve simulated hours.
    for hour in range(12):
        grid.run_for(SECONDS_PER_HOUR)
        status = asct.status(job_id)
        print(
            f"  t+{hour + 1:2}h  state={status['state']:<9} "
            f"progress={status['progress']:6.1%}"
        )
        if asct.is_done(job_id):
            break

    status = asct.status(job_id)
    print(f"\nFinal state: {status['state']}")
    for task in status["tasks"]:
        print(
            f"  {task['task_id']}  node={task['node']:<9} "
            f"attempts={task['attempts']}  evictions={task['evictions']}"
        )
    events = ", ".join(e.event for e in asct.events_for(job_id))
    print(f"ASCT notifications: {events}")


if __name__ == "__main__":
    main()
