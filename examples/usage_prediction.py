#!/usr/bin/env python
"""Usage-pattern collection and idle prediction (LUPA/GUPA).

Feeds a LUPA three weeks of 5-minute samples from simulated owners with
different habits, then shows the weekly behavioural profile it learned
(as an ASCII heat strip per weekday) and the idle-span predictions the
GRM would consult — the paper's "lunch-breaks, nights, holidays,
working periods" categories, recovered by clustering.

Run:  python examples/usage_prediction.py
"""

import random

from repro.core.gupa import Gupa
from repro.core.lupa import Lupa
from repro.sim.clock import (
    DAY_NAMES,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
)
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB
from repro.sim.workstation import Workstation

SHADES = " .:-=+*#%@"


def train_lupa(profile, weeks=3, seed=11):
    loop = EventLoop()
    workstation = Workstation(
        loop, profile.name, spec=MachineSpec(), profile=profile,
        rng=random.Random(seed),
    )
    machine = workstation.machine
    lupa = Lupa(
        loop, profile.name,
        probe=lambda: 1.0 if (
            machine.keyboard_active or machine.owner_cpu >= 0.1
        ) else 0.0,
        min_history_days=7,
    )
    loop.run_until(weeks * SECONDS_PER_WEEK)
    return lupa


def heat_strip(lupa, day):
    """One character per half-hour bin: darker = busier."""
    chars = []
    for bin_index in range(lupa.bins_per_day):
        when = day * SECONDS_PER_DAY + bin_index * (
            SECONDS_PER_DAY / lupa.bins_per_day
        )
        busy = lupa.predict_busy(when)
        chars.append(SHADES[min(len(SHADES) - 1, int(busy * len(SHADES)))])
    return "".join(chars)


def main():
    print("Learned weekly profiles (one row per weekday, one char per "
          "30 min, 00:00-24:00;\ndarker = busier):\n")
    gupa = Gupa()
    lupas = {}
    for profile in (OFFICE_WORKER, STUDENT_LAB, NIGHT_OWL):
        lupa = train_lupa(profile)
        lupas[profile.name] = lupa
        gupa.upload_pattern(profile.name, lupa.pattern())
        print(f"{profile.name} "
              f"(history: {lupa.history_days} days, "
              f"{lupa.samples_taken} samples)")
        print("           0     3     6     9     12    15    18    21")
        for day in range(7):
            print(f"  {DAY_NAMES[day][:3]}      {heat_strip(lupa, day)}")
        print()

    print("GUPA idle-span predictions (probability the node stays idle "
          "for the whole span):\n")
    queries = [
        ("Tuesday 10:00", SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR),
        ("Tuesday 12:15", SECONDS_PER_DAY + 12.25 * SECONDS_PER_HOUR),
        ("Tuesday 22:00", SECONDS_PER_DAY + 22 * SECONDS_PER_HOUR),
        ("Saturday 14:00", 5 * SECONDS_PER_DAY + 14 * SECONDS_PER_HOUR),
    ]
    spans = [0.5, 2.0, 8.0]
    header = "node           when            " + "".join(
        f"{s:>4.1f}h  " for s in spans
    )
    print(header)
    print("-" * len(header))
    for name in lupas:
        for label, start in queries:
            cells = "".join(
                f"{gupa.idle_probability(name, start, h * SECONDS_PER_HOUR):5.2f}  "
                for h in spans
            )
            print(f"{name:<14} {label:<15} {cells}")
        print()

    print("A GRM placing a 2-hour task on Tuesday morning should pick "
          "the night_owl's machine;\nat 22:00 it should pick the "
          "office_worker's. That is exactly what the pattern_aware\n"
          "policy does with these numbers.")


if __name__ == "__main__":
    main()
