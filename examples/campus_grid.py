#!/usr/bin/env python
"""A multi-cluster campus grid with wide-area overflow.

Three departmental clusters — a small maths lab, a big CS instructional
lab, and a physics group with fast dedicated nodes — are joined under a
parent GRM ("clusters are then arranged in a hierarchy", Section 4).
Jobs the home cluster cannot place are forwarded: the parent sees only
aggregated per-cluster summaries, never per-node status.

Run:  python examples/campus_grid.py
"""

from repro import ApplicationSpec, Grid, ResourceRequirements
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.machine import MachineSpec
from repro.sim.usage import OFFICE_WORKER, STUDENT_LAB


def main():
    grid = Grid(seed=17, policy="first_fit", lupa_enabled=False,
                update_interval=120.0)

    grid.add_cluster("maths")
    for i in range(3):
        grid.add_node("maths", f"maths{i}", profile=OFFICE_WORKER)

    grid.add_cluster("cs")
    for i in range(12):
        grid.add_node("cs", f"cs{i}", profile=STUDENT_LAB)

    grid.add_cluster("physics")
    for i in range(4):
        grid.add_node("physics", f"phys{i}",
                      spec=MachineSpec(mips=3000.0), dedicated=True)

    parent, uplinks = grid.connect_clusters_to_parent("campus")
    grid.run_for(600)

    print("Campus hierarchy: parent sees aggregated summaries only:\n")
    for cluster in parent.clusters:
        summary = parent.summary_of(cluster)
        print(f"  {cluster:<8} nodes={summary['nodes']:>2}  "
              f"sharing={summary['sharing_nodes']:>2}  "
              f"free_cpu={summary['free_cpu_total']:5.1f}  "
              f"max_mips={summary['max_node_mips']:.0f}")

    # 1. A job maths *can* run stays home.
    local_id = grid.submit(
        ApplicationSpec(name="small-solve", work_mips=1e6), cluster="maths"
    )

    # 2. An 8-process gang cannot fit in maths (3 nodes) -> forwarded.
    gang_id = grid.submit(
        ApplicationSpec(
            name="big-gang", kind="bsp", tasks=8, program="stencil",
            work_mips=2e6, metadata={"supersteps": 4},
        ),
        cluster="maths",
    )

    # 3. A job needing >= 2000 MIPS nodes: only physics qualifies.
    fast_id = grid.submit(
        ApplicationSpec(
            name="needs-fast-cpu", work_mips=6e6,
            requirements=ResourceRequirements(min_mips=2000.0),
        ),
        cluster="maths",
    )

    grid.run_for(6 * SECONDS_PER_HOUR)

    print("\nOutcomes for three jobs submitted at the maths cluster:\n")
    for job_id, label in ((local_id, "small-solve"),
                          (gang_id, "big-gang x8"),
                          (fast_id, "needs-fast-cpu")):
        job = grid.job(job_id)
        if job.forwarded_to:
            remote = None
            for handle in grid.clusters.values():
                try:
                    remote = handle.grm.job(job.forwarded_to)
                    where = handle.name
                    break
                except KeyError:
                    continue
            nodes = sorted({t.node for t in remote.tasks if t.node})
            print(f"  {label:<15} forwarded -> {where:<8} "
                  f"state={remote.state.value:<10} nodes={nodes}")
        else:
            nodes = sorted({t.node for t in job.tasks if t.node})
            print(f"  {label:<15} stayed home        "
                  f"state={job.state.value:<10} nodes={nodes}")

    print(f"\nParent GRM: {parent.summaries_received} summaries received, "
          f"{parent.remote_submissions} wide-area placements.")


if __name__ == "__main__":
    main()
