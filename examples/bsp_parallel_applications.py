#!/usr/bin/env python
"""BSP parallel applications: real computation plus grid execution.

Part 1 runs three genuine BSP programs on the executable runtime
(:func:`repro.bsp.run_bsp`): a parallel reduction, a Monte Carlo pi
estimate using DRMA broadcast, and an odd-even transposition sort using
neighbour messaging — the "broad range of parallel applications" the
paper targets.

Part 2 takes the pi program's cost profile (work per superstep,
communication volume) and executes it as an InteGrade BSP *job*, showing
superstep pacing, checkpointing, and gang placement on shared desktops.

Run:  python examples/bsp_parallel_applications.py
"""

import random

from repro import ApplicationSpec, Grid
from repro.bsp import run_bsp
from repro.sim.clock import SECONDS_PER_DAY


def parallel_sum(bsp, n):
    """Block-partitioned reduction to pid 0."""
    lo = bsp.pid * n // bsp.nprocs
    hi = (bsp.pid + 1) * n // bsp.nprocs
    bsp.send(0, sum(range(lo, hi)))
    bsp.sync()
    if bsp.pid == 0:
        return sum(bsp.messages())
    return None


def monte_carlo_pi(bsp, samples_per_proc, seed):
    """Each process samples; pid 0 broadcasts the estimate via DRMA."""
    rng = random.Random(seed + bsp.pid)
    inside = sum(
        1 for _ in range(samples_per_proc)
        if rng.random() ** 2 + rng.random() ** 2 <= 1.0
    )
    bsp.register("estimate", 0.0)
    bsp.send(0, inside)
    bsp.sync()
    if bsp.pid == 0:
        total = sum(bsp.messages())
        estimate = 4.0 * total / (samples_per_proc * bsp.nprocs)
        for other in range(bsp.nprocs):
            bsp.put(other, "estimate", estimate)
    bsp.sync()
    return bsp.read("estimate")


def odd_even_sort(bsp, values):
    """Odd-even transposition sort: one block per process."""
    block = sorted(
        values[bsp.pid * len(values) // bsp.nprocs:
               (bsp.pid + 1) * len(values) // bsp.nprocs]
    )
    for phase in range(bsp.nprocs):
        if phase % 2 == 0:
            partner = bsp.pid + 1 if bsp.pid % 2 == 0 else bsp.pid - 1
        else:
            partner = bsp.pid + 1 if bsp.pid % 2 == 1 else bsp.pid - 1
        if 0 <= partner < bsp.nprocs:
            bsp.send(partner, block)
        bsp.sync()
        inbox = bsp.messages()
        if inbox:
            merged = sorted(block + inbox[0])
            keep_low = bsp.pid < partner
            half = len(merged) - len(inbox[0])
            block = merged[:half] if keep_low else merged[len(inbox[0]):]
    return block


def main():
    print("=== Part 1: real BSP programs on the executable runtime ===\n")

    run = run_bsp(8, parallel_sum, 100_000)
    print(f"parallel_sum(1e5) on 8 procs  -> {run.results[0]}"
          f"   (expected {sum(range(100_000))})")
    print(f"  supersteps={run.supersteps} messages={run.messages_sent} "
          f"bytes~{run.comm_bytes}")

    run = run_bsp(8, monte_carlo_pi, 50_000, 7)
    print(f"\nmonte_carlo_pi on 8 procs     -> {run.results[0]:.4f} on every pid "
          f"(all agree: {len(set(run.results)) == 1})")
    print(f"  supersteps={run.supersteps} drma_puts={run.puts_applied}")

    values = random.Random(3).sample(range(10_000), 400)
    run = run_bsp(4, odd_even_sort, values)
    merged = [v for block in run.results for v in block]
    print(f"\nodd_even_sort of 400 values on 4 procs -> sorted: "
          f"{merged == sorted(values)}")
    print(f"  supersteps={run.supersteps} messages={run.messages_sent}")

    print("\n=== Part 2: the same shape as an InteGrade grid job ===\n")
    grid = Grid(seed=7, policy="pattern_aware")
    grid.add_cluster("lab")
    for i in range(6):
        grid.add_node("lab", f"node{i}", dedicated=True)
    grid.run_for(300)

    spec = ApplicationSpec(
        name="monte-carlo-pi",
        kind="bsp",
        tasks=6,
        program="monte_carlo_pi",
        work_mips=6e6,                     # total per-process work
        checkpoint_every_supersteps=4,
        metadata={"supersteps": 12, "superstep_comm_bytes": 64_000},
    )
    job_id = grid.submit(spec)
    done = grid.wait_for_job(job_id, max_seconds=2 * SECONDS_PER_DAY)
    job = grid.job(job_id)
    coordinator = grid.coordinator(job_id)
    print(f"grid job {job_id}: done={done} state={job.state.value} "
          f"makespan={job.makespan / 60:.1f} min")
    print(f"  supersteps executed        : {coordinator.supersteps}")
    print(f"  communication time total   : "
          f"{coordinator.comm_seconds_total:.2f} s")
    print(f"  consistent checkpoints     : {coordinator.checkpoints_saved}"
          f" (every 4 supersteps)")
    print(f"  gang placed on             : "
          f"{sorted({t.node for t in job.tasks})}")


if __name__ == "__main__":
    main()
