#!/usr/bin/env python
"""The paper's virtual-topology request, verbatim.

Section 3: "a grid user may, for example, submit the following request
to InteGrade: execute application X in two groups of 50 nodes, each
group connected internally by a 100 Mbps network and the two groups
connected by a 10 Mbps network; each node should have at least 16 MB of
RAM and a CPU of at least 500 MIPS."

This example builds exactly that physical network, submits exactly that
request, and shows the GRM's topology-aware gang placement honouring it.

Run:  python examples/virtual_topology.py
"""

from repro import (
    ApplicationSpec,
    Grid,
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.machine import MachineSpec
from repro.sim.network import NetworkTopology

GROUP_SIZE = 50


def main():
    # The physical network: two 100 Mbps segments, a 10 Mbps uplink.
    network = NetworkTopology()
    network.add_segment("west-lab", bandwidth_mbps=100.0)
    network.add_segment("east-lab", bandwidth_mbps=100.0)
    network.connect("west-lab", "east-lab", bandwidth_mbps=10.0)

    grid = Grid(seed=5, policy="first_fit", lupa_enabled=False,
                update_interval=300.0, tick_interval=120.0)
    grid.add_cluster("campus", network=network)
    # 55 nodes per lab (a little slack), meeting the hardware minima.
    spec = MachineSpec(mips=800.0, ram_mb=64.0)
    for i in range(GROUP_SIZE + 5):
        grid.add_node("campus", f"west{i:02}", spec=spec,
                      dedicated=True, segment="west-lab")
        grid.add_node("campus", f"east{i:02}", spec=spec,
                      dedicated=True, segment="east-lab")
    grid.run_for(600)

    # The request, exactly as Section 3 words it.
    node_reqs = ResourceRequirements(min_mips=500.0, min_ram_mb=16.0)
    request = VirtualTopologyRequest(
        groups=(
            NodeGroupRequest(GROUP_SIZE, 100.0, node_reqs),
            NodeGroupRequest(GROUP_SIZE, 100.0, node_reqs),
        ),
        inter_bandwidth_mbps=10.0,
    )
    spec = ApplicationSpec(
        name="application-X",
        kind="bsp",
        tasks=2 * GROUP_SIZE,
        program="application_x",
        work_mips=5e5,
        topology=request,
        metadata={"supersteps": 4, "superstep_comm_bytes": 200_000},
    )
    job_id = grid.submit(spec)
    done = grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
    job = grid.job(job_id)

    print(f"Request: 2 groups x {GROUP_SIZE} nodes, 100 Mbps intra, "
          f"10 Mbps inter, >=16 MB RAM, >=500 MIPS")
    print(f"Job {job_id}: done={done}, state={job.state.value}\n")

    placement: dict = {}
    for task in job.tasks:
        placement.setdefault(network.segment_of(task.node), []).append(task)
    for segment, tasks in sorted(placement.items()):
        print(f"  {segment}: {len(tasks)} processes "
              f"(e.g. {sorted(t.node for t in tasks)[:4]} ...)")

    west = next(t.node for t in job.tasks
                if network.segment_of(t.node) == "west-lab")
    east = next(t.node for t in job.tasks
                if network.segment_of(t.node) == "east-lab")
    intra = network.link_between(west, sorted(
        t.node for t in job.tasks
        if network.segment_of(t.node) == "west-lab")[1])
    inter = network.link_between(west, east)
    print(f"\n  intra-group bandwidth: {intra.bandwidth_mbps:.0f} Mbps "
          f"(requested >= 100)")
    print(f"  inter-group bandwidth: {inter.bandwidth_mbps:.0f} Mbps "
          f"(requested >= 10)")
    coordinator = grid.coordinator(job_id)
    print(f"  superstep communication time, 100-node barrier: "
          f"{coordinator.comm_seconds_total:.2f} s total "
          f"(bottlenecked by the 10 Mbps uplink)")


if __name__ == "__main__":
    main()
