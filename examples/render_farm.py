#!/usr/bin/env python
"""Opportunistic render farm: the paper's motivating workload.

"The movie industry makes intensive use of computers to render movies"
(Section 1).  A studio has 16 office desktops and no dedicated cluster.
Overnight and around their owners' work, the desktops render a batch of
frames submitted Monday morning.

The example contrasts two schedulers on identical workloads and machine
seeds: availability-only (first come, first used) versus the paper's
usage-pattern-aware policy after a two-week LUPA training period —
showing fewer evictions and less wasted computation.

Run:  python examples/render_farm.py
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB

FRAMES = 8                     # below pool capacity: placement choice matters
FRAME_WORK_MIPS = 6e6          # ~100 idle minutes per frame at 1000 MIPS
TRAINING_DAYS = 14
NODES = 16


def build_grid(policy):
    grid = Grid(
        seed=99,
        policy=policy,
        lupa_enabled=True,
        lupa_min_history_days=7,
        update_interval=120.0,
        tick_interval=60.0,
    )
    grid.add_cluster("studio")
    profiles = [OFFICE_WORKER] * 10 + [STUDENT_LAB] * 4 + [NIGHT_OWL] * 2
    for i, profile in enumerate(profiles):
        grid.add_node(
            "studio", f"desk{i:02}", profile=profile, sharing=VACATE_POLICY
        )
    return grid


def run_batch(policy):
    grid = build_grid(policy)
    # Two weeks of operation trains every LUPA before the batch arrives.
    grid.run_for(TRAINING_DAYS * SECONDS_PER_DAY)
    # Monday 09:00 of week 3: the studio submits the whole batch.
    grid.run_for(9 * SECONDS_PER_HOUR)
    asct = grid.make_asct("studio", user="producer")
    job_ids = [
        asct.submit(ApplicationSpec(
            name=f"frame-{frame:03}",
            work_mips=FRAME_WORK_MIPS,
            metadata={"checkpoint_interval_s": 900.0},
        ))
        for frame in range(FRAMES)
    ]
    deadline = grid.loop.now + 4 * SECONDS_PER_DAY
    while grid.loop.now < deadline:
        grid.run_for(SECONDS_PER_HOUR)
        if all(asct.is_done(j) for j in job_ids):
            break
    jobs = [grid.job(j) for j in job_ids]
    finished = [j for j in jobs if j.makespan is not None]
    evictions = sum(t.evictions for j in jobs for t in j.tasks)
    wasted = sum(t.wasted_mips for j in jobs for t in j.tasks)
    last_done = max((j.makespan for j in finished), default=float("nan"))
    return {
        "frames_done": len(finished),
        "batch_hours": last_done / 3600.0,
        "evictions": evictions,
        "wasted_cpu_min": wasted / 1000.0 / 60.0,
    }


def main():
    print(f"Rendering {FRAMES} frames on {NODES} shared desktops "
          f"(submitted Monday 09:00)\n")
    table = Table(
        ["scheduler", "frames done", "batch (h)", "evictions",
         "wasted CPU (min)"],
        title="Render batch: availability-only vs usage-pattern-aware",
    )
    for policy in ("fastest_first", "pattern_aware"):
        outcome = run_batch(policy)
        table.add_row(
            policy,
            f"{outcome['frames_done']}/{FRAMES}",
            outcome["batch_hours"],
            outcome["evictions"],
            outcome["wasted_cpu_min"],
        )
    print(table.render())
    print(
        "\npattern_aware places frames on machines whose owners are "
        "predicted to stay away\n(night-owls' desks during the day, "
        "office desks at night), so fewer renders are\ninterrupted "
        "and less computation is thrown away."
    )


if __name__ == "__main__":
    main()
