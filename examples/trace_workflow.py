#!/usr/bin/env python
"""Usage-trace workflow: collect, save, replay, predict.

Section 5: "We also started to collect information about node's usage
in order to develop node usage patterns."  The full pipeline:

1. **collect** — record two weeks of a synthetic office workstation's
   owner activity with a :class:`TraceRecorder`;
2. **save/load** — round-trip the portable text format through a file;
3. **replay** — drive a fresh simulation from the recorded trace with
   :class:`TraceWorkstation` and feed a LUPA from it;
4. **predict** — the replay-trained LUPA gives the same kind of idle
   forecasts as one trained on live machines.

Run:  python examples/trace_workflow.py
"""

import os
import random
import tempfile

from repro.core.lupa import Lupa
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.trace import TraceRecorder, TraceWorkstation, parse_trace
from repro.sim.usage import OFFICE_WORKER
from repro.sim.workstation import Workstation

WEEKS = 2


def main():
    # 1. Collect.
    loop = EventLoop()
    live = Workstation(
        loop, "alice-desktop", spec=MachineSpec(),
        profile=OFFICE_WORKER, rng=random.Random(101),
    )
    recorder = TraceRecorder(live, sample_interval=300.0)
    loop.run_until(WEEKS * SECONDS_PER_WEEK)
    print(f"Recorded {len(recorder.events)} owner-state transitions "
          f"over {WEEKS} weeks on 'alice-desktop'.")

    # 2. Save and reload through the portable format.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".trace", delete=False
    ) as f:
        f.write(recorder.dump())
        path = f.name
    with open(path) as f:
        events = parse_trace(f.read())
    size = os.path.getsize(path)
    os.unlink(path)
    print(f"Trace file: {size} bytes, {len(events)} events "
          "(step-function text format).")

    # 3. Replay into a fresh simulation and train a LUPA from it.
    replay_loop = EventLoop()
    replayed = TraceWorkstation(
        replay_loop, "alice-desktop", events, loop_trace=True
    )
    machine = replayed.machine
    lupa = Lupa(
        replay_loop, "alice-desktop",
        probe=lambda: 1.0 if (
            machine.keyboard_active or machine.owner_cpu >= 0.1
        ) else 0.0,
        min_history_days=7,
    )
    replay_loop.run_until(2 * WEEKS * SECONDS_PER_WEEK)   # trace loops
    print(f"\nLUPA trained from the replayed trace: "
          f"{lupa.history_days} days of history, learned={lupa.learned}.")

    # 4. Predictions from recorded data.
    print("\nIdle forecasts from the replay-trained profile:")
    probes = [
        ("Tuesday 10:00", SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR),
        ("Tuesday 21:00", SECONDS_PER_DAY + 21 * SECONDS_PER_HOUR),
        ("Saturday 11:00", 5 * SECONDS_PER_DAY + 11 * SECONDS_PER_HOUR),
    ]
    for label, when in probes:
        p2h = lupa.idle_probability(when, 2 * SECONDS_PER_HOUR)
        print(f"  {label:<15} P(idle for 2h) = {p2h:5.2f}")
    print("\nThe scheduler would avoid Alice's desktop on Tuesday "
          "morning and use it freely\nat night and on the weekend — "
          "from the recorded trace alone.")


if __name__ == "__main__":
    main()
