"""Thin setup.py shim so `python setup.py develop` works offline.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
